#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "matview/binding.h"
#include "matview/hash_index.h"
#include "matview/join.h"
#include "matview/join_cache.h"
#include "matview/relation.h"

namespace gstream {
namespace {

Relation MakeRel(uint32_t arity, std::initializer_list<std::vector<VertexId>> rows) {
  Relation r(arity);
  for (const auto& row : rows) r.Append(row);
  return r;
}

TEST(Relation, AppendDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Append({1, 2}));
  EXPECT_FALSE(r.Append({1, 2}));
  EXPECT_TRUE(r.Append({2, 1}));
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Relation, RowAccessors) {
  Relation r(3);
  r.Append({7, 8, 9});
  EXPECT_EQ(r.At(0, 0), 7u);
  EXPECT_EQ(r.At(0, 2), 9u);
  EXPECT_EQ(r.Row(0)[1], 8u);
}

TEST(Relation, VersionIsRowCount) {
  Relation r(1);
  EXPECT_EQ(r.version(), 0u);
  r.Append({5});
  r.Append({5});  // dup
  EXPECT_EQ(r.version(), 1u);
}

TEST(Relation, LargeDedupStress) {
  Relation r(2);
  for (VertexId i = 0; i < 1000; ++i) r.Append({i % 100, i % 50});
  // Distinct pairs: (i%100, i%50) has period lcm(100,50)=100.
  EXPECT_EQ(r.NumRows(), 100u);
}

TEST(HashIndex, ProbeFindsAllRows) {
  Relation r = MakeRel(2, {{1, 10}, {2, 20}, {1, 30}});
  HashIndex idx(&r, 0);
  EXPECT_EQ(idx.Probe(1).size(), 2u);
  EXPECT_EQ(idx.Probe(2).size(), 1u);
  EXPECT_TRUE(idx.Probe(99).empty());
}

TEST(HashIndex, CatchUpIndexesNewRows) {
  Relation r(2);
  r.Append({1, 10});
  HashIndex idx(&r, 0);
  r.Append({1, 20});
  EXPECT_EQ(idx.Probe(1).size(), 1u);  // stale until caught up
  idx.CatchUp();
  EXPECT_EQ(idx.Probe(1).size(), 2u);
}

TEST(HashIndex, IndexesChosenColumn) {
  Relation r = MakeRel(2, {{1, 10}, {2, 10}});
  HashIndex idx(&r, 1);
  EXPECT_EQ(idx.Probe(10).size(), 2u);
  EXPECT_TRUE(idx.Probe(1).empty());
}

TEST(ExtendRight, JoinsOnTailColumn) {
  Relation prefix = MakeRel(2, {{1, 2}, {3, 4}});
  Relation base = MakeRel(2, {{2, 5}, {2, 6}, {4, 7}, {9, 9}});
  Relation out(3);
  ExtendRight(AllRows(prefix), base, nullptr, out);
  EXPECT_EQ(out.NumRows(), 3u);  // (1,2,5) (1,2,6) (3,4,7)
}

TEST(ExtendRight, IndexedAndScanAgree) {
  Relation prefix = MakeRel(2, {{1, 2}, {3, 2}, {5, 6}});
  Relation base = MakeRel(2, {{2, 5}, {6, 1}, {2, 9}});
  Relation scan_out(3), idx_out(3);
  ExtendRight(AllRows(prefix), base, nullptr, scan_out);
  HashIndex idx(&base, 0);
  ExtendRight(AllRows(prefix), base, &idx, idx_out);
  EXPECT_EQ(scan_out.NumRows(), idx_out.NumRows());
}

TEST(ExtendRight, RespectsRowRange) {
  Relation prefix = MakeRel(2, {{1, 2}, {3, 2}});
  Relation base = MakeRel(2, {{2, 5}});
  Relation out(3);
  ExtendRight(RowRange{&prefix, 1, 2}, base, nullptr, out);  // only row (3,2)
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.At(0, 0), 3u);
}

TEST(ExtendRightSingle, JoinsOneTuple) {
  Relation prefix = MakeRel(2, {{1, 2}, {3, 2}, {4, 5}});
  Relation out(3);
  ExtendRightSingle(AllRows(prefix), /*src=*/2, /*dst=*/8, nullptr, out);
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.At(0, 2), 8u);
}

TEST(ExtendRightSingle, IndexedVariantHonorsRange) {
  Relation prefix = MakeRel(2, {{1, 2}, {3, 2}});
  HashIndex idx(&prefix, 1);
  Relation out(3);
  ExtendRightSingle(RowRange{&prefix, 0, 1}, 2, 8, &idx, out);
  EXPECT_EQ(out.NumRows(), 1u);  // second row excluded by range
}

TEST(ExtendLeft, PrependsSource) {
  Relation suffix = MakeRel(2, {{2, 7}, {9, 9}});
  Relation base = MakeRel(2, {{1, 2}, {5, 2}});
  Relation out(3);
  ExtendLeft(AllRows(suffix), base, nullptr, out);
  EXPECT_EQ(out.NumRows(), 2u);  // (1,2,7) (5,2,7)
  EXPECT_EQ(out.At(0, 1), 2u);
  EXPECT_EQ(out.At(0, 2), 7u);
}

TEST(ExtendLeft, IndexedAndScanAgree) {
  Relation suffix = MakeRel(2, {{2, 7}, {3, 8}});
  Relation base = MakeRel(2, {{1, 2}, {5, 3}, {6, 3}});
  Relation a(3), b(3);
  ExtendLeft(AllRows(suffix), base, nullptr, a);
  HashIndex idx(&base, 1);
  ExtendLeft(AllRows(suffix), base, &idx, b);
  EXPECT_EQ(a.NumRows(), b.NumRows());
  EXPECT_EQ(a.NumRows(), 3u);
}

TEST(JoinConcat, EquiJoinOnKeys) {
  Relation a = MakeRel(2, {{1, 2}, {3, 4}});
  Relation b = MakeRel(2, {{2, 9}, {4, 8}, {5, 7}});
  Relation out(4);
  JoinConcat(AllRows(a), AllRows(b), {{1, 0}}, nullptr, out);
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST(JoinConcat, MultiKeyVerifiesAllPairs) {
  Relation a = MakeRel(2, {{1, 2}});
  Relation b = MakeRel(2, {{1, 2}, {1, 3}});
  Relation out(4);
  JoinConcat(AllRows(a), AllRows(b), {{0, 0}, {1, 1}}, nullptr, out);
  EXPECT_EQ(out.NumRows(), 1u);
}

TEST(JoinConcat, EmptyKeysIsCrossProduct) {
  Relation a = MakeRel(1, {{1}, {2}});
  Relation b = MakeRel(1, {{7}, {8}, {9}});
  Relation out(2);
  JoinConcat(AllRows(a), AllRows(b), {}, nullptr, out);
  EXPECT_EQ(out.NumRows(), 6u);
}

TEST(JoinCache, ReturnsSameIndexAndCatchesUp) {
  JoinCache cache;
  Relation r(2);
  r.Append({1, 2});
  HashIndex* a = cache.Get(&r, 0);
  EXPECT_EQ(a->Probe(1).size(), 1u);
  r.Append({1, 3});
  HashIndex* b = cache.Get(&r, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->Probe(1).size(), 2u);
  EXPECT_EQ(cache.NumIndexes(), 1u);
  cache.Get(&r, 1);
  EXPECT_EQ(cache.NumIndexes(), 2u);
}

TEST(Relation, RemoveRowsWhereCompactsAndBumpsGeneration) {
  Relation r = MakeRel(2, {{1, 10}, {2, 20}, {3, 10}, {4, 30}});
  uint64_t gen = r.generation();
  size_t removed = r.RemoveRowsWhere([](const VertexId* row) { return row[1] == 10; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.At(0, 0), 2u);
  EXPECT_EQ(r.At(1, 0), 4u);
  EXPECT_GT(r.generation(), gen);
  // Dedup set rebuilt correctly: removed rows can be re-appended...
  EXPECT_TRUE(r.Append({1, 10}));
  // ...and surviving rows still dedupe.
  EXPECT_FALSE(r.Append({2, 20}));
}

TEST(Relation, RemoveRowsWhereNoMatchKeepsGeneration) {
  Relation r = MakeRel(2, {{1, 10}});
  uint64_t gen = r.generation();
  EXPECT_EQ(r.RemoveRowsWhere([](const VertexId*) { return false; }), 0u);
  EXPECT_EQ(r.generation(), gen);
}

TEST(Relation, ClearResetsRows) {
  Relation r = MakeRel(2, {{1, 10}, {2, 20}});
  r.Clear();
  EXPECT_TRUE(r.Empty());
  EXPECT_TRUE(r.Append({1, 10}));  // re-insert after clear works
  r.Clear();
  uint64_t gen = r.generation();
  r.Clear();  // clearing empty is a no-op
  EXPECT_EQ(r.generation(), gen);
}

TEST(HashIndex, RebuildsAfterRetraction) {
  Relation r = MakeRel(2, {{1, 10}, {2, 20}, {1, 30}});
  HashIndex idx(&r, 0);
  EXPECT_EQ(idx.Probe(1).size(), 2u);
  r.RemoveRowsWhere([](const VertexId* row) { return row[1] == 30; });
  idx.CatchUp();
  EXPECT_EQ(idx.Probe(1).size(), 1u);
  EXPECT_EQ(idx.Probe(2).size(), 1u);
  // Probed row index is valid in the compacted relation.
  EXPECT_EQ(r.At(idx.Probe(2)[0], 1), 20u);
}

TEST(JoinCache, ServesRebuiltIndexAfterRetraction) {
  JoinCache cache;
  Relation r(2);
  r.Append({1, 10});
  r.Append({1, 20});
  HashIndex* idx = cache.Get(&r, 0);
  EXPECT_EQ(idx->Probe(1).size(), 2u);
  r.RemoveRowsWhere([](const VertexId* row) { return row[1] == 10; });
  idx = cache.Get(&r, 0);
  EXPECT_EQ(idx->Probe(1).size(), 1u);
}

TEST(PathBindingSpec, NoRepeatsPassthrough) {
  auto spec = PathBindingSpec::For({0, 1, 2});
  EXPECT_FALSE(spec.has_repeats());
  EXPECT_EQ(spec.schema, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(PathBindingSpec, RepeatsBecomeEqualityChecks) {
  auto spec = PathBindingSpec::For({0, 1, 0});  // cycle a->b->a
  EXPECT_TRUE(spec.has_repeats());
  EXPECT_EQ(spec.schema, (std::vector<uint32_t>{0, 1}));
  ASSERT_EQ(spec.eq_checks.size(), 1u);
  EXPECT_EQ(spec.eq_checks[0], (std::pair<uint32_t, uint32_t>{0, 2}));
}

TEST(PathRowsToBindings, FiltersCycleViolations) {
  Relation view = MakeRel(3, {{1, 2, 1}, {1, 2, 3}});
  auto spec = PathBindingSpec::For({0, 1, 0});
  auto bindings = PathRowsToBindings(AllRows(view), spec);
  ASSERT_EQ(bindings.rows->NumRows(), 1u);  // only (1,2,1) closes the cycle
  EXPECT_EQ(bindings.rows->At(0, 0), 1u);
  EXPECT_EQ(bindings.rows->At(0, 1), 2u);
}

TEST(JoinBindingRanges, NaturalJoinOnSharedVertices) {
  // Path A over vertices (0,1); path B over (1,2).
  Relation a = MakeRel(2, {{5, 6}, {7, 8}});
  Relation b = MakeRel(2, {{6, 9}, {8, 10}, {6, 11}});
  auto joined = JoinBindingRanges({0, 1}, AllRows(a), {1, 2}, AllRows(b));
  EXPECT_EQ(joined.schema, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(joined.rows->NumRows(), 3u);
}

TEST(JoinBindingRanges, DisjointSchemasCross) {
  Relation a = MakeRel(1, {{1}});
  Relation b = MakeRel(1, {{2}, {3}});
  auto joined = JoinBindingRanges({0}, AllRows(a), {1}, AllRows(b));
  EXPECT_EQ(joined.rows->NumRows(), 2u);
  EXPECT_EQ(joined.schema.size(), 2u);
}

TEST(JoinBindingRanges, WithIndexMatchesScan) {
  Relation a = MakeRel(2, {{5, 6}, {7, 8}});
  Relation b = MakeRel(2, {{6, 9}, {8, 10}});
  auto plain = JoinBindingRanges({0, 1}, AllRows(a), {1, 2}, AllRows(b));
  HashIndex idx(&b, 0);  // first shared vertex (1) is column 0 of b
  auto indexed = JoinBindingRanges({0, 1}, AllRows(a), {1, 2}, AllRows(b), &idx);
  EXPECT_EQ(plain.rows->NumRows(), indexed.rows->NumRows());
}

TEST(FirstSharedColumn, FindsAndMisses) {
  EXPECT_EQ(FirstSharedColumn({0, 1}, {2, 1, 3}), 1);
  EXPECT_EQ(FirstSharedColumn({0, 1}, {2, 3}), -1);
}

// ---- Window-delta pipeline (provenance, tags, delta kernels) ------------

TEST(RelationProvenance, TaggedAppendKeepsTagsAndDedups) {
  Relation r(2);
  r.EnableProvenance();
  EXPECT_TRUE(r.AppendTagged(std::vector<VertexId>{1, 2}.data(), 3));
  EXPECT_TRUE(r.AppendTagged(std::vector<VertexId>{2, 3}.data(), 5));
  // A duplicate keeps the existing row and tag.
  EXPECT_FALSE(r.AppendTagged(std::vector<VertexId>{1, 2}.data(), 7));
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.ProvOf(0), 3u);
  EXPECT_EQ(r.ProvOf(1), 5u);
  // Plain appends on a tagged relation are pre-window rows.
  r.Append({9, 9});
  EXPECT_EQ(r.ProvOf(2), 0u);
}

TEST(RelationProvenance, TagsSurviveRemoveAndMove) {
  Relation r(1);
  r.EnableProvenance();
  for (VertexId v = 0; v < 6; ++v) r.AppendTagged(&v, v + 10);
  r.RemoveRowsWhere([](const VertexId* row) { return *row % 2 == 0; });
  ASSERT_EQ(r.NumRows(), 3u);
  for (size_t i = 0; i < r.NumRows(); ++i) EXPECT_EQ(r.ProvOf(i), r.At(i, 0) + 10);
  Relation moved(std::move(r));
  EXPECT_EQ(moved.ProvOf(0), moved.At(0, 0) + 10);
}

TEST(RowTagsTest, CheckpointBackedLookup) {
  const WindowCheckpoint cps[] = {{4, 2}, {7, 5}};
  RowTags tags{nullptr, cps, 2};
  EXPECT_EQ(tags.TagOf(0), 0u);  // pre-window
  EXPECT_EQ(tags.TagOf(3), 0u);
  EXPECT_EQ(tags.TagOf(4), 2u);
  EXPECT_EQ(tags.TagOf(6), 2u);
  EXPECT_EQ(tags.TagOf(7), 5u);
  EXPECT_EQ(tags.TagOf(100), 5u);
  EXPECT_EQ(RowTags{}.TagOf(42), 0u);  // no tags: everything pre-window
}

TEST(WindowProvenanceTest, CheckpointsDeriveTagsAndDeltaBegin) {
  Relation view(2);
  WindowProvenance prov;
  view.Append({1, 1});  // pre-window row
  prov.Checkpoint(&view, 1);
  // Position 1 appends nothing; position 2's checkpoint takes the slot over.
  prov.Checkpoint(&view, 2);
  view.Append({2, 2});
  prov.Checkpoint(&view, 3);
  view.Append({3, 3});
  view.Append({3, 4});

  RowTags tags = prov.TagsFor(&view);
  EXPECT_EQ(tags.TagOf(0), 0u);
  EXPECT_EQ(tags.TagOf(1), 2u);
  EXPECT_EQ(tags.TagOf(2), 3u);
  EXPECT_EQ(tags.TagOf(3), 3u);
  EXPECT_EQ(prov.WindowDeltaBegin(&view), 1u);

  Relation untouched(2);
  untouched.Append({9, 9});
  EXPECT_EQ(prov.TagsFor(&untouched).TagOf(0), 0u);
  EXPECT_EQ(prov.WindowDeltaBegin(&untouched), 1u);  // == NumRows()
}

/// One tagged batch pass must emit exactly the rows of the per-update loop,
/// each tagged with the seed/base max position.
TEST(DeltaKernels, ExtendRightDeltaMatchesLoopedSingles) {
  Relation seeds(2);
  seeds.EnableProvenance();
  seeds.AppendTagged(std::vector<VertexId>{1, 10}.data(), 1);
  seeds.AppendTagged(std::vector<VertexId>{2, 20}.data(), 2);
  seeds.AppendTagged(std::vector<VertexId>{3, 10}.data(), 3);
  Relation base = MakeRel(2, {{10, 5}, {20, 6}, {10, 7}, {99, 8}});

  Relation looped(3);
  for (size_t i = 0; i < seeds.NumRows(); ++i)
    ExtendRight(RowRange{&seeds, i, i + 1}, base, nullptr, looped);

  Relation delta(3);
  delta.EnableProvenance();
  ExtendRightDelta(DeltaBatch{AllRows(seeds), TagsOfProvenance(seeds)}, base,
                   nullptr, RowTags{}, delta);

  ASSERT_EQ(delta.NumRows(), looped.NumRows());
  for (size_t i = 0; i < looped.NumRows(); ++i) {
    // Row sets are equal; find each looped row in the delta output.
    bool found = false;
    for (size_t j = 0; j < delta.NumRows() && !found; ++j) {
      found = std::equal(looped.Row(i), looped.Row(i) + 3, delta.Row(j));
      if (found) EXPECT_EQ(delta.ProvOf(j), delta.At(j, 0));  // seed v == tag
    }
    EXPECT_TRUE(found);
  }
  // With base rows tagged, the emitted tag is the max of both sides.
  const WindowCheckpoint base_cps[] = {{2, 9}};  // base rows 2.. are position 9
  Relation tagged(3);
  tagged.EnableProvenance();
  ExtendRightDelta(DeltaBatch{AllRows(seeds), TagsOfProvenance(seeds)}, base,
                   nullptr, RowTags{nullptr, base_cps, 1}, tagged);
  for (size_t j = 0; j < tagged.NumRows(); ++j) {
    if (tagged.At(j, 2) == 7)  // derived from base row 2
      EXPECT_EQ(tagged.ProvOf(j), 9u);
  }
}

TEST(DeltaKernels, ExtendLeftDeltaTagsPrependedRows) {
  Relation seeds(2);
  seeds.EnableProvenance();
  seeds.AppendTagged(std::vector<VertexId>{10, 1}.data(), 4);
  Relation base = MakeRel(2, {{5, 10}, {6, 10}, {7, 99}});

  Relation out(3);
  out.EnableProvenance();
  ExtendLeftDelta(DeltaBatch{AllRows(seeds), TagsOfProvenance(seeds)}, base,
                  nullptr, RowTags{}, out);
  ASSERT_EQ(out.NumRows(), 2u);
  for (size_t j = 0; j < out.NumRows(); ++j) {
    EXPECT_EQ(out.At(j, 1), 10u);
    EXPECT_EQ(out.ProvOf(j), 4u);
  }
}

TEST(DeltaKernels, JoinConcatDeltaMatchesUntaggedRowsWithMaxTags) {
  Relation a(2);
  a.EnableProvenance();
  a.AppendTagged(std::vector<VertexId>{1, 10}.data(), 2);
  a.AppendTagged(std::vector<VertexId>{2, 20}.data(), 6);
  Relation b = MakeRel(2, {{10, 100}, {20, 200}});
  const std::vector<std::pair<uint32_t, uint32_t>> keys{{1, 0}};

  Relation plain(4);
  JoinConcat(AllRows(a), AllRows(b), keys, nullptr, plain);

  const WindowCheckpoint b_cps[] = {{1, 4}};  // b row 1 is position 4
  Relation tagged(4);
  tagged.EnableProvenance();
  JoinConcatDelta(DeltaBatch{AllRows(a), TagsOfProvenance(a)}, AllRows(b),
                  RowTags{nullptr, b_cps, 1}, keys, nullptr, tagged);

  ASSERT_EQ(tagged.NumRows(), plain.NumRows());
  for (size_t j = 0; j < tagged.NumRows(); ++j) {
    if (tagged.At(j, 0) == 1) EXPECT_EQ(tagged.ProvOf(j), 2u);  // max(2, 0)
    if (tagged.At(j, 0) == 2) EXPECT_EQ(tagged.ProvOf(j), 6u);  // max(6, 4)
  }
}

TEST(TaggedBindings, PathRowsAndJoinCarryTags) {
  // Path positions (v0, v1, v0): rows violating the cycle check drop out,
  // survivors carry their source tags through the binding join.
  PathBindingSpec spec = PathBindingSpec::For({0, 1, 0});
  Relation view = MakeRel(3, {{1, 2, 1}, {3, 4, 5}, {6, 7, 6}});
  const WindowCheckpoint cps[] = {{1, 8}};
  OwnedBindings bound =
      PathRowsToBindingsTagged(AllRows(view), spec, RowTags{nullptr, cps, 1});
  ASSERT_EQ(bound.rows->NumRows(), 2u);  // {1,2} tag 0 and {6,7} tag 8
  EXPECT_EQ(bound.rows->ProvOf(0), 0u);
  EXPECT_EQ(bound.rows->ProvOf(1), 8u);

  Relation other = MakeRel(2, {{2, 30}, {7, 40}});
  const WindowCheckpoint other_cps[] = {{0, 3}};
  OwnedBindings joined = JoinBindingRangesTagged(
      bound.schema, bound.All(), {1, 2}, AllRows(other),
      RowTags{nullptr, other_cps, 1});
  ASSERT_EQ(joined.rows->NumRows(), 2u);
  for (size_t i = 0; i < joined.rows->NumRows(); ++i)
    EXPECT_EQ(joined.rows->ProvOf(i),
              std::max<uint32_t>(3, joined.rows->At(i, 0) == 6 ? 8 : 0));
}

}  // namespace
}  // namespace gstream
