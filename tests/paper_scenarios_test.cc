#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.h"
#include "query/parser.h"
#include "tric/tric_engine.h"

namespace gstream {
namespace {

/// End-to-end walkthroughs of the paper's running examples, executed on
/// every engine.
class PaperScenariosTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override { engine_ = CreateEngine(GetParam()); }

  QueryPattern Parse(const std::string& text) {
    auto r = ParsePattern(text, in_);
    EXPECT_TRUE(r.ok) << r.error;
    return r.pattern;
  }

  UpdateResult Apply(const std::string& s, const std::string& l,
                     const std::string& t) {
    return engine_->ApplyUpdate(
        {in_.Intern(s), in_.Intern(l), in_.Intern(t), UpdateOp::kAdd});
  }

  StringInterner in_;
  std::unique_ptr<ContinuousEngine> engine_;
};

/// Fig. 2 + Fig. 3: the check-in stream. The initial graph knows(P1,P2),
/// knows(P2,P3), knows(P1,P3); then P1, P2, P3 check in at `plc`. The Fig. 3
/// query ("two people who know each other check in at the same place") must
/// fire as the check-ins accumulate.
TEST_P(PaperScenariosTest, Fig2CheckinStream) {
  engine_->AddQuery(
      1, Parse("(?p1)-[knows]->(?p2); (?p1)-[checksIn]->(?plc);"
               "(?p2)-[checksIn]->(?plc)"));

  // Initial graph G (Fig. 2(b), leftmost).
  Apply("P1", "knows", "P2");
  Apply("P2", "knows", "P3");
  Apply("P1", "knows", "P3");

  // u1 = checksIn(P1, plc): no pair complete yet.
  EXPECT_TRUE(Apply("P1", "checksIn", "plc").triggered.empty());
  // u2 = checksIn(P2, plc): P1-knows->P2 and both checked in -> match.
  auto u2 = Apply("P2", "checksIn", "plc");
  ASSERT_EQ(u2.triggered.size(), 1u);
  EXPECT_EQ(u2.new_embeddings, 1u);
  // u3 = checksIn(P3, plc): completes (P1,P3) and (P2,P3).
  auto u3 = Apply("P3", "checksIn", "plc");
  ASSERT_EQ(u3.triggered.size(), 1u);
  EXPECT_EQ(u3.new_embeddings, 2u);
}

/// Fig. 4's four queries against the Fig. 9 updates: posted(p2, pst1) must
/// derive the tuple (f2, p2, pst1) for the hasMod->posted-pst1 path — the
/// exact materialization the paper walks through in Examples 4.6/4.7.
TEST_P(PaperScenariosTest, Fig4QueriesFig9Updates) {
  engine_->AddQuery(1, Parse("(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
                             "(?p1)-[posted]->(pst2); (?c)-[reply]->(pst2)"));
  engine_->AddQuery(2, Parse("(?f1)-[hasMod]->(?p1)"));
  engine_->AddQuery(3, Parse("(com1)-[hasCreator]->(?v); (?v)-[posted]->(pst1);"
                             "(pst1)-[containedIn]->(?w)"));
  engine_->AddQuery(4, Parse("(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
                             "(pst1)-[containedIn]->(?w)"));

  // The state the paper's Fig. 9 materialized views imply.
  auto q2_first = Apply("f1", "hasMod", "p1");  // Q2 fires immediately
  ASSERT_EQ(q2_first.triggered.size(), 1u);
  EXPECT_EQ(q2_first.triggered[0], 2u);
  Apply("f2", "hasMod", "p1");
  Apply("f2", "hasMod", "p2");
  Apply("p1", "posted", "pst1");

  // Example 4.6/4.7's update u1 = posted(p2, pst1): in the hasMod trie it
  // joins with (f2, p2) producing (f2, p2, pst1); the containedIn and
  // posted-pst2 branches stay empty, so no query completes...
  auto u1 = Apply("p2", "posted", "pst1");
  EXPECT_TRUE(u1.triggered.empty());

  // ...until the containedIn edge arrives, completing Q4 for both
  // moderators' derivations: (f1,p1,pst1,f9) and (f2,p1,pst1,f9) and
  // (f2,p2,pst1,f9).
  auto contained = Apply("pst1", "containedIn", "f9");
  ASSERT_EQ(contained.triggered.size(), 1u);
  EXPECT_EQ(contained.triggered[0], 4u);
  EXPECT_EQ(contained.new_embeddings, 3u);

  // Q1 completes once pst2 posts and the reply arrive.
  Apply("p1", "posted", "pst2");
  auto reply = Apply("com1", "reply", "pst2");
  ASSERT_EQ(reply.triggered.size(), 1u);
  EXPECT_EQ(reply.triggered[0], 1u);
  // Assignments: f in {f1, f2} with p1, com1 -> 2 embeddings.
  EXPECT_EQ(reply.new_embeddings, 2u);

  // Q3 completes via hasCreator.
  auto creator = Apply("com1", "hasCreator", "p1");
  ASSERT_EQ(creator.triggered.size(), 1u);
  EXPECT_EQ(creator.triggered[0], 3u);
}

/// Fig. 1(a): the spam clique. Reported once the full clique pattern holds.
TEST_P(PaperScenariosTest, Fig1SpamClique) {
  engine_->AddQuery(7, Parse("(?u1)-[knows]->(?u2);"
                             "(?u1)-[shares]->(?post); (?post)-[links]->(dom);"
                             "(?u2)-[likes]->(?post)"));
  Apply("u1", "knows", "u2");
  Apply("u1", "shares", "postA");
  EXPECT_TRUE(Apply("u2", "likes", "postA").triggered.empty());  // not flagged yet
  auto flagged = Apply("postA", "links", "dom");
  ASSERT_EQ(flagged.triggered.size(), 1u);
  EXPECT_EQ(flagged.new_embeddings, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, PaperScenariosTest,
    ::testing::Values(EngineKind::kTric, EngineKind::kTricPlus, EngineKind::kInv,
                      EngineKind::kInvPlus, EngineKind::kInc, EngineKind::kIncPlus,
                      EngineKind::kGraphDb, EngineKind::kNaive),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      std::string name = EngineKindName(info.param);
      for (auto& c : name)
        if (c == '+') c = 'P';
      return name;
    });

/// Fig. 6's clustering: TRIC must build exactly the trie forest of the
/// paper's Example 4.5 (also asserted structurally in tric_test.cc) and the
/// paper's Example 4.6 pruning: the hasCreator trie is not expanded when its
/// root view is empty.
TEST(PaperStructures, Fig6TrieShape) {
  StringInterner in;
  tric::TricEngine engine(false);
  auto parse = [&](const char* p) {
    auto r = ParsePattern(p, in);
    EXPECT_TRUE(r.ok);
    return r.pattern;
  };
  engine.AddQuery(1, parse("(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
                           "(?p1)-[posted]->(pst2); (?c)-[reply]->(pst2)"));
  engine.AddQuery(2, parse("(?f1)-[hasMod]->(?p1)"));
  engine.AddQuery(3, parse("(com1)-[hasCreator]->(?v); (?v)-[posted]->(pst1);"
                           "(pst1)-[containedIn]->(?w)"));
  engine.AddQuery(4, parse("(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
                           "(pst1)-[containedIn]->(?w)"));
  // Fig. 6: three tries — the hasMod trie holds the shared root plus
  // posted->pst1, posted->pst2 and Q4's containedIn below posted->pst1
  // (4 nodes); the reply->pst2 trie is a single node; the hasCreator trie
  // chains hasCreator -> posted->pst1 -> containedIn (3 nodes).
  EXPECT_EQ(engine.forest().NumTries(), 3u);
  EXPECT_EQ(engine.forest().NumNodes(), 8u);
}

}  // namespace
}  // namespace gstream
