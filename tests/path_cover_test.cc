#include <gtest/gtest.h>

#include <set>

#include "query/parser.h"
#include "query/path_cover.h"

namespace gstream {
namespace {

QueryPattern Parse(const std::string& text, StringInterner& in) {
  auto r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

/// Every vertex and every edge must appear in at least one path
/// (Definition 4.2), and paths must be well-formed.
void CheckCoverage(const QueryPattern& q, const std::vector<CoveringPath>& paths) {
  std::set<uint32_t> vertices, edges;
  for (const auto& p : paths) {
    ASSERT_EQ(p.vertices.size(), p.edges.size() + 1);
    for (size_t i = 0; i < p.edges.size(); ++i) {
      const auto& e = q.edge(p.edges[i]);
      EXPECT_EQ(e.src, p.vertices[i]) << "edge/vertex misalignment";
      EXPECT_EQ(e.dst, p.vertices[i + 1]);
      edges.insert(p.edges[i]);
    }
    for (uint32_t v : p.vertices) vertices.insert(v);
    // No edge repeats inside one path.
    std::set<uint32_t> distinct(p.edges.begin(), p.edges.end());
    EXPECT_EQ(distinct.size(), p.edges.size());
  }
  EXPECT_EQ(vertices.size(), q.NumVertices());
  EXPECT_EQ(edges.size(), q.NumEdges());
}

TEST(PathCover, SingleEdge) {
  StringInterner in;
  auto q = Parse("(?x)-[r]->(?y)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 1u);
  CheckCoverage(q, paths);
}

TEST(PathCover, ChainIsOnePath) {
  StringInterner in;
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c); (?c)-[t]->(?d)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 3u);
  CheckCoverage(q, paths);
}

TEST(PathCover, OutStarNeedsOnePathPerSpoke) {
  StringInterner in;
  auto q = Parse("(?c)-[r]->(?x); (?c)-[s]->(?y); (?c)-[t]->(?z)", in);
  auto paths = ExtractCoveringPaths(q);
  EXPECT_EQ(paths.size(), 3u);
  CheckCoverage(q, paths);
}

TEST(PathCover, MixedStarWalksThroughCenter) {
  StringInterner in;
  // y -> c -> x: one path should traverse the center.
  auto q = Parse("(?y)-[in]->(?c); (?c)-[out]->(?x)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 2u);
  CheckCoverage(q, paths);
}

TEST(PathCover, CycleCoveredByOnePathRevisitingStart) {
  StringInterner in;
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c); (?c)-[t]->(?a)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 3u);
  EXPECT_EQ(paths[0].vertices.front(), paths[0].vertices.back());
  CheckCoverage(q, paths);
}

TEST(PathCover, PaperQ1SharedPrefix) {
  StringInterner in;
  // Fig. 4 Q1: ?f1-hasMod->?p1; ?p1-posted->pst1; ?p1-posted->pst2;
  //            ?com-reply->pst2.
  auto q = Parse(
      "(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
      "(?p1)-[posted]->(pst2); (?com)-[reply]->(pst2)",
      in);
  auto paths = ExtractCoveringPaths(q);
  CheckCoverage(q, paths);
  ASSERT_EQ(paths.size(), 3u);
  // Both posted-branches carry the shared hasMod prefix (the paper's P1/P2).
  int with_hasmod_prefix = 0;
  for (const auto& p : paths)
    if (p.edges.size() == 2 && p.edges[0] == 0) ++with_hasmod_prefix;
  EXPECT_EQ(with_hasmod_prefix, 2);
}

TEST(PathCover, PaperQ4SinglePath) {
  StringInterner in;
  // Fig. 4 Q4: hasMod, posted -> pst1, containedIn: one 3-edge path.
  auto q = Parse(
      "(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1); (pst1)-[containedIn]->(?f2)",
      in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].edges.size(), 3u);
}

TEST(PathCover, SubPathsRemoved) {
  StringInterner in;
  // Diamond-ish: a->b->c plus a standalone b->c would be a sub-path.
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
}

TEST(PathCover, SelfLoopHandled) {
  StringInterner in;
  auto q = Parse("(?x)-[r]->(?x)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].vertices.front(), paths[0].vertices.back());
  CheckCoverage(q, paths);
}

TEST(PathCover, DiamondBothBranchesCovered) {
  StringInterner in;
  auto q = Parse("(?a)-[r]->(?b); (?a)-[s]->(?c); (?b)-[t]->(?d); (?c)-[u]->(?d)", in);
  auto paths = ExtractCoveringPaths(q);
  CheckCoverage(q, paths);
  EXPECT_EQ(paths.size(), 2u);
  for (const auto& p : paths) EXPECT_EQ(p.edges.size(), 2u);
}

TEST(PathCover, InStarConvergesOnCenter) {
  StringInterner in;
  auto q = Parse("(?x)-[r]->(?c); (?y)-[s]->(?c); (?z)-[t]->(?c)", in);
  auto paths = ExtractCoveringPaths(q);
  EXPECT_EQ(paths.size(), 3u);
  CheckCoverage(q, paths);
}

TEST(PathCover, BranchReachableOnlyThroughCoveredEdges) {
  StringInterner in;
  // a->b->c->d and c->e: the second path should re-walk a->b->c.
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c); (?c)-[t]->(?d); (?c)-[u]->(?e)", in);
  auto paths = ExtractCoveringPaths(q);
  CheckCoverage(q, paths);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].edges.size(), 3u);
  EXPECT_EQ(paths[1].edges.size(), 3u);
  // Shared prefix: both start with edges r, s.
  EXPECT_EQ(paths[0].edges[0], paths[1].edges[0]);
  EXPECT_EQ(paths[0].edges[1], paths[1].edges[1]);
}

TEST(PathCover, GenericSignatureMatchesPathEdges) {
  StringInterner in;
  auto q = Parse("(?a)-[r]->(?b); (?b)-[s]->(pst1)", in);
  auto paths = ExtractCoveringPaths(q);
  ASSERT_EQ(paths.size(), 1u);
  auto sig = GenericSignature(q, paths[0]);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_TRUE(sig[0].src_is_var());
  EXPECT_TRUE(sig[0].dst_is_var());
  EXPECT_EQ(sig[1].dst, in.Intern("pst1"));
}

TEST(PathCover, IsSubPathDetectsContiguity) {
  CoveringPath inner, outer;
  outer.edges = {1, 2, 3, 4};
  outer.vertices = {0, 1, 2, 3, 4};
  inner.edges = {2, 3};
  inner.vertices = {1, 2, 3};
  EXPECT_TRUE(IsSubPath(inner, outer));
  inner.edges = {1, 3};
  EXPECT_FALSE(IsSubPath(inner, outer));
  inner.edges = {};
  EXPECT_FALSE(IsSubPath(inner, outer));
}

TEST(PathCover, DeterministicAcrossCalls) {
  StringInterner in;
  auto q = Parse(
      "(?f1)-[hasMod]->(?p1); (?p1)-[posted]->(pst1);"
      "(?p1)-[posted]->(pst2); (?com)-[reply]->(pst2)",
      in);
  auto a = ExtractCoveringPaths(q);
  auto b = ExtractCoveringPaths(q);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

}  // namespace
}  // namespace gstream
