#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "engine/engine.h"
#include "graph/properties.h"
#include "query/parser.h"

namespace gstream {
namespace {

using CmpOp = QueryPattern::CmpOp;

TEST(PropertyStore, SetGetRoundTrip) {
  PropertyStore store;
  store.Set(5, 1, 42);
  EXPECT_EQ(store.Get(5, 1), std::optional<int64_t>(42));
  EXPECT_FALSE(store.Get(5, 2).has_value());
  EXPECT_FALSE(store.Get(6, 1).has_value());
  store.Set(5, 1, 43);  // overwrite
  EXPECT_EQ(store.Get(5, 1), std::optional<int64_t>(43));
  EXPECT_EQ(store.size(), 1u);
}

TEST(EvalCmp, AllOperators) {
  EXPECT_TRUE(QueryPattern::EvalCmp(CmpOp::kEq, 3, 3));
  EXPECT_FALSE(QueryPattern::EvalCmp(CmpOp::kEq, 3, 4));
  EXPECT_TRUE(QueryPattern::EvalCmp(CmpOp::kNe, 3, 4));
  EXPECT_TRUE(QueryPattern::EvalCmp(CmpOp::kLt, 3, 4));
  EXPECT_FALSE(QueryPattern::EvalCmp(CmpOp::kLt, 4, 4));
  EXPECT_TRUE(QueryPattern::EvalCmp(CmpOp::kLe, 4, 4));
  EXPECT_TRUE(QueryPattern::EvalCmp(CmpOp::kGt, 5, 4));
  EXPECT_TRUE(QueryPattern::EvalCmp(CmpOp::kGe, 4, 4));
  EXPECT_FALSE(QueryPattern::EvalCmp(CmpOp::kGe, 3, 4));
}

TEST(ConstraintParser, ParsesAllOperators) {
  StringInterner in;
  auto r = ParsePattern(
      "(?x {age>25, score<=100, level!=3})-[knows]->(?y {age>=18, rank<5, tier=2})",
      in);
  ASSERT_TRUE(r.ok) << r.error;
  const auto& cs = r.pattern.constraints();
  ASSERT_EQ(cs.size(), 6u);
  EXPECT_EQ(cs[0].op, CmpOp::kGt);
  EXPECT_EQ(cs[0].value, 25);
  EXPECT_EQ(cs[1].op, CmpOp::kLe);
  EXPECT_EQ(cs[2].op, CmpOp::kNe);
  EXPECT_EQ(cs[3].op, CmpOp::kGe);
  EXPECT_EQ(cs[4].op, CmpOp::kLt);
  EXPECT_EQ(cs[5].op, CmpOp::kEq);
  // First three attach to vertex ?x (index 0), rest to ?y.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(cs[i].vertex, 0u);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(cs[i].vertex, 1u);
}

TEST(ConstraintParser, NegativeValuesAndSharedVariables) {
  StringInterner in;
  auto r = ParsePattern("(?x {balance>-100})-[owes]->(?y); (?x {flags=0})-[knows]->(?y)",
                        in);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.pattern.constraints().size(), 2u);
  EXPECT_EQ(r.pattern.constraints()[0].value, -100);
  // Both constraints bind to the same vertex ?x.
  EXPECT_EQ(r.pattern.constraints()[0].vertex, r.pattern.constraints()[1].vertex);
}

TEST(ConstraintParser, RejectsMalformedConstraints) {
  StringInterner in;
  EXPECT_FALSE(ParsePattern("(?x {age>})-[r]->(?y)", in).ok);
  EXPECT_FALSE(ParsePattern("(?x {>25})-[r]->(?y)", in).ok);
  EXPECT_FALSE(ParsePattern("(?x {age 25})-[r]->(?y)", in).ok);
  EXPECT_FALSE(ParsePattern("(?x {age>25)-[r]->(?y)", in).ok);
  EXPECT_FALSE(ParsePattern("(?x {age!25})-[r]->(?y)", in).ok);
}

/// Constraint semantics across every engine.
class ConstraintEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ConstraintEngineTest, FiltersByProperty) {
  StringInterner in;
  PropertyStore props;
  auto engine = CreateEngine(GetParam());
  engine->set_property_store(&props);

  auto r = ParsePattern("(?adult {age>=18})-[buys]->(?item)", in);
  ASSERT_TRUE(r.ok) << r.error;
  engine->AddQuery(1, r.pattern);

  LabelId age = in.Intern("age"), buys = in.Intern("buys");
  VertexId kid = in.Intern("kid"), adult = in.Intern("adult"),
           beer = in.Intern("beer");
  props.Set(kid, age, 12);
  props.Set(adult, age, 30);

  auto blocked = engine->ApplyUpdate({kid, buys, beer, UpdateOp::kAdd});
  EXPECT_TRUE(blocked.triggered.empty());
  auto ok = engine->ApplyUpdate({adult, buys, beer, UpdateOp::kAdd});
  ASSERT_EQ(ok.triggered.size(), 1u);
  EXPECT_EQ(ok.new_embeddings, 1u);
}

TEST_P(ConstraintEngineTest, MissingPropertyFailsConstraint) {
  StringInterner in;
  PropertyStore props;
  auto engine = CreateEngine(GetParam());
  engine->set_property_store(&props);
  auto r = ParsePattern("(?x {vetted=1})-[posts]->(?p)", in);
  engine->AddQuery(1, r.pattern);
  // No property on "anon": constraint fails closed.
  auto res = engine->ApplyUpdate(
      {in.Intern("anon"), in.Intern("posts"), in.Intern("p1"), UpdateOp::kAdd});
  EXPECT_TRUE(res.triggered.empty());
}

TEST_P(ConstraintEngineTest, UnconstrainedQueriesUnaffectedByStore) {
  StringInterner in;
  PropertyStore props;
  auto engine = CreateEngine(GetParam());
  engine->set_property_store(&props);
  engine->AddQuery(1, ParsePattern("(?x)-[r]->(?y)", in).pattern);
  auto res = engine->ApplyUpdate(
      {in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_EQ(res.new_embeddings, 1u);
}

TEST_P(ConstraintEngineTest, ConstraintOnIntermediateVertex) {
  StringInterner in;
  PropertyStore props;
  auto engine = CreateEngine(GetParam());
  engine->set_property_store(&props);
  auto r = ParsePattern("(?a)-[r]->(?mid {hot=1}); (?mid)-[s]->(?b)", in);
  engine->AddQuery(1, r.pattern);

  LabelId hot = in.Intern("hot");
  props.Set(in.Intern("m1"), hot, 1);
  props.Set(in.Intern("m2"), hot, 0);

  engine->ApplyUpdate({in.Intern("a"), in.Intern("r"), in.Intern("m1"), UpdateOp::kAdd});
  engine->ApplyUpdate({in.Intern("a"), in.Intern("r"), in.Intern("m2"), UpdateOp::kAdd});
  auto r1 = engine->ApplyUpdate(
      {in.Intern("m1"), in.Intern("s"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_EQ(r1.new_embeddings, 1u);  // through the hot vertex
  auto r2 = engine->ApplyUpdate(
      {in.Intern("m2"), in.Intern("s"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_TRUE(r2.triggered.empty());  // cold vertex filtered
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ConstraintEngineTest,
    ::testing::Values(EngineKind::kTric, EngineKind::kTricPlus, EngineKind::kInv,
                      EngineKind::kInvPlus, EngineKind::kInc, EngineKind::kIncPlus,
                      EngineKind::kGraphDb, EngineKind::kNaive),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      std::string name = EngineKindName(info.param);
      for (auto& c : name)
        if (c == '+') c = 'P';
      return name;
    });

/// Randomized agreement: constrained queries over random properties; every
/// engine vs the oracle.
TEST(ConstraintAgreement, RandomizedPropertiesMatchOracle) {
  StringInterner in;
  PropertyStore props;
  Rng rng(88);

  // Random ages for a small vertex universe.
  LabelId age = in.Intern("age");
  for (int v = 0; v < 8; ++v)
    props.Set(in.Intern("v" + std::to_string(v)), age,
              static_cast<int64_t>(rng.Next(50)));

  const char* patterns[] = {
      "(?a {age>20})-[l0]->(?b)",
      "(?a)-[l0]->(?b {age<=25})",
      "(?a {age>10})-[l0]->(?b); (?b {age>10})-[l0]->(?c)",
      "(?a {age>=0})-[l1]->(?b {age<20}); (?b)-[l0]->(?a)",
      "(?a {age!=13})-[l0]->(?a)",
  };

  auto oracle = CreateEngine(EngineKind::kNaive);
  oracle->set_property_store(&props);
  std::vector<std::unique_ptr<ContinuousEngine>> engines;
  for (EngineKind kind : PaperEngineKinds()) {
    engines.push_back(CreateEngine(kind));
    engines.back()->set_property_store(&props);
  }
  for (QueryId qid = 0; qid < 5; ++qid) {
    auto r = ParsePattern(patterns[qid], in);
    ASSERT_TRUE(r.ok) << r.error;
    oracle->AddQuery(qid, r.pattern);
    for (auto& e : engines) e->AddQuery(qid, r.pattern);
  }

  for (int i = 0; i < 250; ++i) {
    EdgeUpdate u{in.Intern("v" + std::to_string(rng.Next(8))),
                 in.Intern("l" + std::to_string(rng.Next(2))),
                 in.Intern("v" + std::to_string(rng.Next(8))), UpdateOp::kAdd};
    UpdateResult expected = oracle->ApplyUpdate(u);
    for (auto& e : engines) {
      UpdateResult got = e->ApplyUpdate(u);
      ASSERT_EQ(got.per_query, expected.per_query) << e->name() << " update " << i;
    }
  }
}

}  // namespace
}  // namespace gstream
