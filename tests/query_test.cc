#include <gtest/gtest.h>

#include "query/edge_pattern.h"
#include "query/parser.h"
#include "query/pattern.h"

namespace gstream {
namespace {

TEST(QueryPattern, BuildsVerticesAndEdges) {
  StringInterner in;
  QueryPattern q;
  uint32_t x = q.AddVariable("?x");
  uint32_t p = q.AddLiteral(in.Intern("pst1"));
  q.AddEdge(x, in.Intern("posted"), p);
  EXPECT_EQ(q.NumVertices(), 2u);
  EXPECT_EQ(q.NumEdges(), 1u);
  EXPECT_TRUE(q.vertex(x).is_var);
  EXPECT_FALSE(q.vertex(p).is_var);
  EXPECT_TRUE(q.IsValid());
}

TEST(QueryPattern, InvalidWhenEdgeless) {
  QueryPattern q;
  q.AddVariable();
  EXPECT_FALSE(q.IsValid());
}

TEST(QueryPattern, InvalidWithIsolatedVertex) {
  StringInterner in;
  QueryPattern q;
  uint32_t a = q.AddVariable();
  uint32_t b = q.AddVariable();
  q.AddVariable();  // isolated
  q.AddEdge(a, in.Intern("r"), b);
  EXPECT_FALSE(q.IsValid());
}

TEST(QueryPattern, GenericizedSubstitutesVariables) {
  StringInterner in;
  QueryPattern q;
  uint32_t x = q.AddVariable();
  uint32_t lit = q.AddLiteral(in.Intern("plc"));
  q.AddEdge(x, in.Intern("checksIn"), lit);
  GenericEdgePattern g = q.Genericized(0);
  EXPECT_TRUE(g.src_is_var());
  EXPECT_FALSE(g.dst_is_var());
  EXPECT_EQ(g.dst, in.Intern("plc"));
  EXPECT_EQ(g.label, in.Intern("checksIn"));
}

TEST(QueryPattern, AdjacencyListsTrackEdges) {
  StringInterner in;
  QueryPattern q;
  uint32_t a = q.AddVariable(), b = q.AddVariable(), c = q.AddVariable();
  uint32_t e0 = q.AddEdge(a, in.Intern("r"), b);
  uint32_t e1 = q.AddEdge(b, in.Intern("s"), c);
  EXPECT_EQ(q.OutEdges(a), std::vector<uint32_t>{e0});
  EXPECT_EQ(q.InEdges(b), std::vector<uint32_t>{e0});
  EXPECT_EQ(q.OutEdges(b), std::vector<uint32_t>{e1});
  EXPECT_EQ(q.InEdges(c), std::vector<uint32_t>{e1});
}

TEST(GenericEdgePattern, MatchesRespectsLiterals) {
  GenericEdgePattern p{5, 9, kNoVertex};  // (5)-[9]->(?var)
  EXPECT_TRUE(p.Matches(5, 9, 77));
  EXPECT_FALSE(p.Matches(6, 9, 77));
  EXPECT_FALSE(p.Matches(5, 8, 77));
}

TEST(GenericEdgePattern, GeneralizationsCoverAllFour) {
  EdgeUpdate u{10, 3, 20, UpdateOp::kAdd};
  auto gens = Generalizations(u);
  for (const auto& g : gens) EXPECT_TRUE(g.Matches(u));
  EXPECT_EQ(gens[0].src, 10u);
  EXPECT_EQ(gens[0].dst, 20u);
  EXPECT_TRUE(gens[3].src_is_var());
  EXPECT_TRUE(gens[3].dst_is_var());
}

TEST(Parser, ParsesSingleClause) {
  StringInterner in;
  auto r = ParsePattern("(?x)-[knows]->(?y)", in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumVertices(), 2u);
  EXPECT_EQ(r.pattern.NumEdges(), 1u);
  EXPECT_TRUE(r.pattern.vertex(0).is_var);
}

TEST(Parser, SharedVariablesUnify) {
  StringInterner in;
  auto r = ParsePattern("(?x)-[knows]->(?y); (?y)-[posted]->(pst1)", in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumVertices(), 3u);
  EXPECT_EQ(r.pattern.NumEdges(), 2u);
  // ?y is the target of edge 0 and the source of edge 1.
  EXPECT_EQ(r.pattern.edge(0).dst, r.pattern.edge(1).src);
}

TEST(Parser, SharedLiteralsUnify) {
  StringInterner in;
  auto r = ParsePattern("(?a)-[r]->(hub); (?b)-[s]->(hub)", in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumVertices(), 3u);
  EXPECT_EQ(r.pattern.edge(0).dst, r.pattern.edge(1).dst);
}

TEST(Parser, AcceptsMatchKeywordAndCommas) {
  StringInterner in;
  auto r = ParsePattern("MATCH (?a)-[r]->(?b), (?b)-[s]->(?c)", in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumEdges(), 2u);
}

TEST(Parser, AcceptsTheFig3CheckinQuery) {
  StringInterner in;
  auto r = ParsePattern(
      "(?p1)-[knows]->(?p2); (?p1)-[checksIn]->(?plc);"
      "(?p2)-[checksIn]->(?plc); (?plc)-[partOf]->(rio)",
      in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumVertices(), 4u);
  EXPECT_EQ(r.pattern.NumEdges(), 4u);
}

TEST(Parser, RejectsMissingArrow) {
  StringInterner in;
  auto r = ParsePattern("(?x)-[knows]-(?y)", in);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Parser, RejectsEmptyInput) {
  StringInterner in;
  EXPECT_FALSE(ParsePattern("", in).ok);
  EXPECT_FALSE(ParsePattern("   ", in).ok);
}

TEST(Parser, RejectsDanglingClause) {
  StringInterner in;
  EXPECT_FALSE(ParsePattern("(?x)-[r]->", in).ok);
  EXPECT_FALSE(ParsePattern("(?x)", in).ok);
}

TEST(Parser, ToleratesTrailingSeparator) {
  StringInterner in;
  auto r = ParsePattern("(?x)-[r]->(?y);", in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumEdges(), 1u);
}

TEST(Parser, SelfLoopClause) {
  StringInterner in;
  auto r = ParsePattern("(?x)-[r]->(?x)", in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.pattern.NumVertices(), 1u);
  EXPECT_EQ(r.pattern.edge(0).src, r.pattern.edge(0).dst);
}

TEST(Parser, CanonicalToStringRoundTrips) {
  StringInterner in;
  auto r = ParsePattern("(?a)-[knows]->(?b); (?b)-[posted]->(pst1)", in);
  ASSERT_TRUE(r.ok);
  std::string canonical = r.pattern.ToString(in);
  auto r2 = ParsePattern(canonical, in);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.pattern.ToString(in), canonical);
}

}  // namespace
}  // namespace gstream
