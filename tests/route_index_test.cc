#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/parser.h"
#include "query/route_index.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace {

/// Query routing index suite (DESIGN.md §12). The invariants under test:
///  * RouteIndex::Route returns exactly the brute-force match set (every
///    target whose pattern the edge satisfies, each once) under arbitrary
///    Add/Remove churn and deferred compaction;
///  * the prefilter is exact per label/endpoint class and refcounted;
///  * routed engine dispatch is a pure execution strategy: byte-identical
///    results to the legacy linear dispatch and to sequential per-update
///    execution, across all view engines, under mixed AddQuery/RemoveQuery
///    churn;
///  * candidate work collapses: tenant-duplicated query DBs route the same
///    candidate count as a single tenant, while the legacy path scales with
///    the duplication factor;
///  * edges whose label no query mentions are rejected by the prefilter
///    without touching any engine view.

const EngineKind kViewKinds[] = {EngineKind::kTric, EngineKind::kTricPlus,
                                 EngineKind::kInv,  EngineKind::kInvPlus,
                                 EngineKind::kInc,  EngineKind::kIncPlus};

QueryPattern Parse(const std::string& text, StringInterner& in) {
  ParseResult r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

// ---------------------------------------------------------------- unit oracle

TEST(RouteIndexUnit, RouteMatchesBruteForceUnderChurn) {
  std::mt19937 rng(1234);
  const auto pick_vertex = [&](double var_prob) -> VertexId {
    if (std::uniform_real_distribution<>(0, 1)(rng) < var_prob)
      return kNoVertex;
    return static_cast<VertexId>(std::uniform_int_distribution<>(0, 9)(rng));
  };
  const auto random_pattern = [&] {
    GenericEdgePattern p;
    p.src = pick_vertex(0.5);
    p.label = static_cast<LabelId>(std::uniform_int_distribution<>(0, 7)(rng));
    p.dst = pick_vertex(0.5);
    return p;
  };

  RouteIndex<uint32_t> index;
  std::vector<std::pair<GenericEdgePattern, uint32_t>> live;
  uint32_t next_target = 0;

  const auto check_all = [&] {
    // Probe every (src, label, dst) corner of the small id space, so probes
    // hit literal hits, literal misses, and unregistered labels alike.
    for (VertexId s = 0; s < 10; ++s) {
      for (LabelId l = 0; l < 9; ++l) {  // 8 is never registered
        for (VertexId t = 0; t < 10; ++t) {
          const EdgeUpdate u{s, l, t, UpdateOp::kAdd};
          std::vector<uint32_t> expected;
          for (const auto& [p, target] : live)
            if (p.Matches(u)) expected.push_back(target);
          std::sort(expected.begin(), expected.end());
          expected.erase(std::unique(expected.begin(), expected.end()),
                         expected.end());
          std::vector<uint32_t> got;
          ASSERT_EQ(index.Route(u, got), expected.size());
          std::sort(got.begin(), got.end());
          ASSERT_EQ(got, expected);
          ASSERT_EQ(index.MayMatch(u), !expected.empty() || [&] {
            for (const auto& [p, target] : live)
              if (p.label == l) return true;
            return false;
          }());
        }
      }
    }
  };

  for (int wave = 0; wave < 12; ++wave) {
    // Add a wave of distinct (pattern, target) pairs...
    for (int i = 0; i < 10; ++i) {
      const GenericEdgePattern p = random_pattern();
      const uint32_t target = next_target++;
      index.Add(p, target);
      live.emplace_back(p, target);
    }
    // ...remove a few random survivors...
    std::shuffle(live.begin(), live.end(), rng);
    for (int i = 0; i < 4 && !live.empty(); ++i) {
      ASSERT_TRUE(index.Remove(live.back().first, live.back().second));
      live.pop_back();
    }
    // ...and occasionally run the deferred compaction.
    if (wave % 3 == 2) index.Compact();
    check_all();
  }
  // Removing a pair twice (or an unknown pair) reports absence.
  const GenericEdgePattern p = live.front().first;
  const uint32_t target = live.front().second;
  ASSERT_TRUE(index.Remove(p, target));
  EXPECT_FALSE(index.Remove(p, target));

  // Drain everything: the index must report empty (no leaked postings).
  live.erase(live.begin());
  for (const auto& [lp, lt] : live) ASSERT_TRUE(index.Remove(lp, lt));
  index.Compact();
  EXPECT_TRUE(index.Empty());
  for (VertexId s = 0; s < 10; ++s)
    EXPECT_FALSE(index.MayMatch({s, 3, s, UpdateOp::kAdd}));
}

TEST(RouteIndexUnit, PrefilterTracksEndpointClassesExactly) {
  RoutePrefilter pf;
  const GenericEdgePattern literal_src{4, 2, kNoVertex};  // class L? = 1
  const GenericEdgePattern both_var{kNoVertex, 2, kNoVertex};  // class ?? = 0
  pf.Add(literal_src);
  pf.Add(literal_src);  // refcounted: two distinct users of the same shape
  pf.Add(both_var);
  EXPECT_TRUE(pf.MayMatch({4, 2, 9, UpdateOp::kAdd}));
  EXPECT_FALSE(pf.MayMatch({4, 3, 9, UpdateOp::kAdd}));
  EXPECT_EQ(pf.ClassMask(2), (1u << 1) | (1u << 0));
  EXPECT_EQ(pf.ClassMask(3), 0u);

  pf.Remove(literal_src);
  EXPECT_EQ(pf.ClassMask(2), (1u << 1) | (1u << 0));  // one ref left
  pf.Remove(literal_src);
  EXPECT_EQ(pf.ClassMask(2), 1u << 0);
  pf.Remove(both_var);
  EXPECT_EQ(pf.ClassMask(2), 0u);
  EXPECT_FALSE(pf.MayMatch({4, 2, 9, UpdateOp::kAdd}));
  pf.Compact();
  EXPECT_TRUE(pf.Empty());
}

// ------------------------------------------------------- engine-level oracle

/// Streams `updates` in windows of `window` through three engines — routed
/// (default), legacy linear dispatch, and sequential per-update — applying
/// the scripted query adds/removes between windows. All three must agree
/// exactly, per update, and the routed engine must never dispatch more
/// candidate work than the legacy scan.
void ExpectRoutedAgrees(EngineKind kind, const std::vector<QueryPattern>& base,
                        const std::vector<QueryPattern>& pool,
                        const std::vector<EdgeUpdate>& updates, size_t window,
                        uint32_t add_period, uint32_t remove_period,
                        const std::string& label) {
  auto routed = CreateEngine(kind);
  auto legacy = CreateEngine(kind);
  auto sequential = CreateEngine(kind);
  legacy->SetRouteIndex(false);
  for (QueryId qid = 0; qid < base.size(); ++qid) {
    routed->AddQuery(qid, base[qid]);
    legacy->AddQuery(qid, base[qid]);
    sequential->AddQuery(qid, base[qid]);
  }

  QueryId next_qid = static_cast<QueryId>(base.size());
  std::vector<QueryId> live;
  for (QueryId qid = 0; qid < base.size(); ++qid) live.push_back(qid);
  size_t next_pool = 0;
  std::mt19937 rng(77);

  size_t pos = 0;
  size_t wave = 0;
  while (pos < updates.size()) {
    if (add_period != 0 && wave % add_period == add_period - 1 &&
        next_pool < pool.size()) {
      const QueryId qid = next_qid++;
      routed->AddQuery(qid, pool[next_pool]);
      legacy->AddQuery(qid, pool[next_pool]);
      sequential->AddQuery(qid, pool[next_pool]);
      ++next_pool;
      live.push_back(qid);
    }
    if (remove_period != 0 && wave % remove_period == remove_period - 1 &&
        !live.empty()) {
      const size_t victim =
          std::uniform_int_distribution<size_t>(0, live.size() - 1)(rng);
      const QueryId qid = live[victim];
      live.erase(live.begin() + victim);
      ASSERT_TRUE(routed->RemoveQuery(qid)) << label;
      ASSERT_TRUE(legacy->RemoveQuery(qid)) << label;
      ASSERT_TRUE(sequential->RemoveQuery(qid)) << label;
    }
    ++wave;

    const size_t n = std::min(window, updates.size() - pos);
    std::vector<UpdateResult> got_routed = routed->ApplyBatch(&updates[pos], n);
    std::vector<UpdateResult> got_legacy = legacy->ApplyBatch(&updates[pos], n);
    ASSERT_EQ(got_routed.size(), n) << label;
    ASSERT_EQ(got_legacy.size(), n) << label;
    for (size_t k = 0; k < n; ++k) {
      const UpdateResult expected = sequential->ApplyUpdate(updates[pos + k]);
      ASSERT_EQ(got_routed[k].per_query, expected.per_query)
          << label << ": " << routed->name() << " routed vs sequential at "
          << pos + k;
      ASSERT_EQ(got_routed[k].triggered, expected.triggered)
          << label << ": " << routed->name() << " routed vs sequential at "
          << pos + k;
      ASSERT_EQ(got_routed[k].per_query, got_legacy[k].per_query)
          << label << ": " << routed->name() << " routed vs legacy at "
          << pos + k;
      ASSERT_EQ(got_routed[k].triggered, got_legacy[k].triggered)
          << label << ": " << routed->name() << " routed vs legacy at "
          << pos + k;
    }
    pos += n;
  }
  EXPECT_LE(routed->routed_candidates(), legacy->routed_candidates())
      << label << ": " << routed->name();
  EXPECT_EQ(legacy->prefilter_rejects(), 0u) << label;
}

TEST(RoutedDispatch, AgreesWithLegacyAndSequentialUnderChurn) {
  workload::SnbConfig cfg;
  cfg.num_updates = 400;
  cfg.seed = 19;
  cfg.num_places = 10;
  cfg.num_tags = 10;
  workload::Workload w = workload::GenerateSnb(cfg);

  workload::QueryGenConfig qc;
  qc.num_queries = 36;
  qc.avg_size = 3.0;
  qc.overlap = 0.5;
  qc.seed = 5;
  workload::QuerySet qs = workload::GenerateQueries(w, qc);
  std::vector<QueryPattern> base(qs.queries.begin(), qs.queries.begin() + 24);
  std::vector<QueryPattern> pool(qs.queries.begin() + 24, qs.queries.end());

  for (EngineKind kind : kViewKinds) {
    SCOPED_TRACE(EngineKindName(kind));
    ExpectRoutedAgrees(kind, base, pool, w.stream.updates(), /*window=*/16,
                       /*add_period=*/2, /*remove_period=*/3, "snb churn");
    // Window of 1 drives the sequential delta path with routing on.
    ExpectRoutedAgrees(kind, base, pool, w.stream.updates(), /*window=*/1,
                       /*add_period=*/5, /*remove_period=*/7, "snb window=1");
  }
}

TEST(RoutedDispatch, CandidateCountCollapsesUnderTenantDuplication) {
  StringInterner in;
  const std::vector<QueryPattern> distinct = {
      Parse("(?a)-[knows]->(?b); (?b)-[knows]->(?c)", in),
      Parse("(?x)-[likes]->(?y)", in),
  };
  LabelId knows = in.Intern("knows");
  LabelId likes = in.Intern("likes");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 12; ++i)
    updates.push_back({v(i), knows, v(i + 1), UpdateOp::kAdd});
  for (int i = 0; i < 6; ++i)
    updates.push_back({v(i), likes, v(i + 9), UpdateOp::kAdd});

  constexpr size_t kTenants = 8;
  for (EngineKind kind : kViewKinds) {
    SCOPED_TRACE(EngineKindName(kind));
    auto one = CreateEngine(kind);
    auto many = CreateEngine(kind);
    auto many_legacy = CreateEngine(kind);
    many_legacy->SetRouteIndex(false);
    QueryId qid = 0;
    for (const QueryPattern& q : distinct) one->AddQuery(qid++, q);
    qid = 0;
    for (size_t t = 0; t < kTenants; ++t) {
      for (const QueryPattern& q : distinct) {
        many->AddQuery(qid, q);
        many_legacy->AddQuery(qid, q);
        ++qid;
      }
    }
    std::vector<UpdateResult> a = many->ApplyBatch(updates.data(), updates.size());
    std::vector<UpdateResult> b =
        many_legacy->ApplyBatch(updates.data(), updates.size());
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k)
      ASSERT_EQ(a[k].per_query, b[k].per_query) << many->name() << " at " << k;
    one->ApplyBatch(updates.data(), updates.size());

    // Routing dispatches shared targets (groups / trie nodes): duplicating
    // every query 8x must not change the routed candidate count, while the
    // legacy per-query scan scales with the duplication factor.
    EXPECT_EQ(many->routed_candidates(), one->routed_candidates())
        << many->name();
    EXPECT_GE(many_legacy->routed_candidates(),
              many->routed_candidates() * (kTenants / 2))
        << many->name();
  }
}

TEST(RoutedDispatch, PrefilterRejectsUnregisteredLabels) {
  StringInterner in;
  const QueryPattern q = Parse("(?a)-[knows]->(?b)", in);
  LabelId knows = in.Intern("knows");
  LabelId likes = in.Intern("likes");  // never registered by any query
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 8; ++i) {
    updates.push_back({v(i), knows, v(i + 1), UpdateOp::kAdd});
    updates.push_back({v(i), likes, v(i + 1), UpdateOp::kAdd});
  }

  for (EngineKind kind : kViewKinds) {
    SCOPED_TRACE(EngineKindName(kind));
    for (size_t window : {size_t{1}, size_t{6}}) {
      auto routed = CreateEngine(kind);
      auto legacy = CreateEngine(kind);
      legacy->SetRouteIndex(false);
      routed->AddQuery(0, q);
      legacy->AddQuery(0, q);
      size_t pos = 0;
      while (pos < updates.size()) {
        const size_t n = std::min(window, updates.size() - pos);
        std::vector<UpdateResult> a = routed->ApplyBatch(&updates[pos], n);
        std::vector<UpdateResult> b = legacy->ApplyBatch(&updates[pos], n);
        ASSERT_EQ(a.size(), n);
        ASSERT_EQ(b.size(), n);
        for (size_t k = 0; k < n; ++k)
          ASSERT_EQ(a[k].per_query, b[k].per_query)
              << routed->name() << " window=" << window << " at " << pos + k;
        pos += n;
      }
      // Half the stream carries a label no query mentions: the routed engine
      // rejects those updates in O(1); the legacy engine never prefilters.
      EXPECT_EQ(routed->prefilter_rejects(), updates.size() / 2)
          << routed->name() << " window=" << window;
      EXPECT_EQ(legacy->prefilter_rejects(), 0u) << routed->name();
      EXPECT_LE(routed->routed_candidates(), legacy->routed_candidates())
          << routed->name() << " window=" << window;
    }
  }
}

}  // namespace
}  // namespace gstream
