#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/interning.h"
#include "common/task_scheduler.h"
#include "engine/engine.h"
#include "query/parser.h"

namespace gstream {
namespace {

/// The work-stealing batch scheduler's contract (task_scheduler.h): lifecycle
/// (construct -> {Submit*; Wait}* -> Shutdown, Submit-after-Shutdown
/// rejected), single-thread degeneracy, steal behavior under forced skew,
/// and — at the engine level — the deterministic per-task arena merge that
/// keeps work-stealing ApplyBatch byte-identical to sequential execution,
/// plus the generalization-profile partition cache. Runs under ASan/TSan in
/// CI (`sanitizer` ctest label).

TEST(TaskSchedulerTest, SingleThreadDegeneracy) {
  TaskScheduler sched(1);
  EXPECT_EQ(sched.size(), 1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(sched.Submit([&ran] { ran.fetch_add(1); }));
  sched.Wait();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(sched.steals(), 0u);  // no one to steal from or for
  EXPECT_EQ(sched.executed(), 100u);
  EXPECT_EQ(sched.submitted(), 100u);
}

TEST(TaskSchedulerTest, ThreadsClampedToAtLeastOne) {
  TaskScheduler sched(0);
  EXPECT_EQ(sched.size(), 1);
  bool ran = false;
  EXPECT_TRUE(sched.Submit([&ran] { ran = true; }));
  sched.Wait();
  EXPECT_TRUE(ran);
}

TEST(TaskSchedulerTest, EmptyWaitReturnsImmediately) {
  TaskScheduler sched(4);
  sched.Wait();  // nothing submitted
  sched.Wait();  // and again — Wait is not one-shot
  EXPECT_EQ(sched.executed(), 0u);
}

TEST(TaskSchedulerTest, ManySubmitWaitCyclesReuseArenas) {
  // The node arenas reset at every Wait barrier; a bug there shows up as a
  // use-after-reset under ASan or a lost task here.
  TaskScheduler sched(4);
  std::atomic<int> total{0};
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (int i = 0; i < 70; ++i)  // > one arena block per cycle
      ASSERT_TRUE(sched.Submit([&total] { total.fetch_add(1); }));
    sched.Wait();
  }
  EXPECT_EQ(total.load(), 200 * 70);
  EXPECT_EQ(sched.executed(), sched.submitted());
}

TEST(TaskSchedulerTest, SubmitAfterShutdownIsRejected) {
  TaskScheduler sched(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(sched.Submit([&ran] { ran.fetch_add(1); }));
  sched.Wait();
  sched.Shutdown();
  EXPECT_TRUE(sched.stopped());
  // The old ThreadPool silently enqueued here; the scheduler must refuse.
  EXPECT_FALSE(sched.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 1);
  sched.Shutdown();  // idempotent
  EXPECT_EQ(sched.executed(), 1u);
}

TEST(TaskSchedulerTest, SpawnOutsideRunningTaskIsRejected) {
  TaskScheduler sched(2);
  EXPECT_FALSE(sched.Spawn([] {}));  // not inside one of sched's tasks
  sched.Wait();
  EXPECT_EQ(sched.executed(), 0u);
}

TEST(TaskSchedulerTest, SpawnedSubtasksRunWithinTheSameWait) {
  TaskScheduler sched(2);
  std::atomic<int> done{0};
  EXPECT_TRUE(sched.Submit([&] {
    for (int i = 0; i < 10; ++i)
      EXPECT_TRUE(sched.Spawn([&done] { done.fetch_add(1); }));
  }));
  sched.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(TaskSchedulerTest, StealCountUnderForcedSkew) {
  // Forced skew: one parent task spawns subtasks onto its own deque, then
  // spins until they all ran. The parent's executor cannot pop its own deque
  // while the parent occupies it, so every subtask MUST be stolen by another
  // executor — steals() is bounded below by the subtask count.
  constexpr int kSubtasks = 32;
  TaskScheduler sched(4);
  std::atomic<int> done{0};
  ASSERT_TRUE(sched.Submit([&] {
    for (int i = 0; i < kSubtasks; ++i)
      ASSERT_TRUE(sched.Spawn([&done] { done.fetch_add(1); }));
    // Generous deadline so a pathologically loaded machine fails loudly
    // instead of hanging the suite.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (done.load() < kSubtasks &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  }));
  sched.Wait();
  EXPECT_EQ(done.load(), kSubtasks);
  EXPECT_GE(sched.steals(), static_cast<uint64_t>(kSubtasks));
}

TEST(TaskSchedulerTest, CountersExactAfterWait) {
  TaskScheduler sched(3);
  for (int i = 0; i < 50; ++i) sched.Submit([] {});
  sched.Wait();
  EXPECT_EQ(sched.submitted(), 50u);
  EXPECT_EQ(sched.executed(), 50u);
  EXPECT_GE(sched.max_queue_depth(), 1u);
}

// ---------------------------------------------------------------------------
// Engine-level: deterministic arena merge + the partition cache.
// ---------------------------------------------------------------------------

QueryPattern Parse(const std::string& text, StringInterner& in) {
  ParseResult r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

const EngineKind kViewKinds[] = {EngineKind::kTric, EngineKind::kTricPlus,
                                 EngineKind::kInv,  EngineKind::kInvPlus,
                                 EngineKind::kInc,  EngineKind::kIncPlus};

/// Work-stealing ApplyBatch must merge its per-task result arenas back into
/// exactly the sequential per-update results — same counts, same
/// notification order — no matter which executor ran which task. A skewed
/// stream (one hub label doing most of the matching, several independent
/// light labels) exercises uneven tasks and real stealing.
TEST(SchedulerEngineTest, DeterministicArenaMergeMatchesSequential) {
  StringInterner in;
  LabelId hot = in.Intern("hot");
  LabelId cold1 = in.Intern("cold1");
  LabelId cold2 = in.Intern("cold2");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  std::vector<QueryPattern> queries;
  queries.push_back(Parse("(?a)-[hot]->(?b); (?b)-[hot]->(?c)", in));
  queries.push_back(Parse("(?a)-[cold1]->(?b)", in));
  queries.push_back(Parse("(?a)-[cold2]->(?b); (?b)-[cold2]->(?c)", in));

  // Hot chain growing through shared vertices (big connected shard) plus
  // independent cold edges (many small shards).
  std::vector<EdgeUpdate> updates;
  for (int i = 0; i < 40; ++i) {
    updates.push_back({v(i), hot, v(i + 1), UpdateOp::kAdd});
    updates.push_back({v(100 + 2 * i), cold1, v(101 + 2 * i), UpdateOp::kAdd});
    updates.push_back({v(200 + 2 * i), cold2, v(201 + 2 * i), UpdateOp::kAdd});
  }

  for (EngineKind kind : kViewKinds) {
    auto sequential = CreateEngine(kind);
    auto batched = CreateEngine(kind);
    for (QueryId qid = 0; qid < queries.size(); ++qid) {
      sequential->AddQuery(qid, queries[qid]);
      batched->AddQuery(qid, queries[qid]);
    }
    batched->SetBatchThreads(4);

    std::vector<UpdateResult> expected;
    for (const EdgeUpdate& u : updates) expected.push_back(sequential->ApplyUpdate(u));

    constexpr size_t kWindow = 30;
    size_t pos = 0;
    while (pos < updates.size()) {
      const size_t n = std::min(kWindow, updates.size() - pos);
      std::vector<UpdateResult> got = batched->ApplyBatch(&updates[pos], n);
      ASSERT_EQ(got.size(), n) << batched->name();
      for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(got[k].changed, expected[pos + k].changed)
            << batched->name() << " at update " << pos + k;
        ASSERT_EQ(got[k].per_query, expected[pos + k].per_query)
            << batched->name() << " at update " << pos + k;
        ASSERT_EQ(got[k].triggered, expected[pos + k].triggered)
            << batched->name() << " at update " << pos + k;
      }
      pos += n;
    }
    // The windows really went through the scheduler (tasks > 0) — otherwise
    // this test silently degenerated to the sequential path.
    EXPECT_GT(batched->batch_tasks(), 0u) << batched->name();
  }
}

/// The footprint/union-find partition is memoized per generalization
/// profile: a second window with the same shape (same matched registered
/// patterns per slot, same duplicate mask) must hit the cache, and a query
/// lifecycle event must invalidate it.
TEST(SchedulerEngineTest, FootprintPartitionCacheHitsAndInvalidation) {
  StringInterner in;
  LabelId r = in.Intern("r");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  auto window_of = [&](LabelId label, int base) {
    std::vector<EdgeUpdate> w;
    for (int i = 0; i < 16; ++i)
      w.push_back({v(base + 2 * i), label, v(base + 2 * i + 1), UpdateOp::kAdd});
    return w;
  };

  for (EngineKind kind : kViewKinds) {
    auto engine = CreateEngine(kind);
    engine->AddQuery(0, Parse("(?a)-[r]->(?b); (?b)-[r]->(?c)", in));
    engine->SetBatchThreads(2);

    engine->ApplyBatch(window_of(r, 0).data(), 16);  // cold: computes + caches
    EXPECT_EQ(engine->footprint_cache_hits(), 0u) << engine->name();
    // Different vertices, same profile (every update matches the same
    // registered generic pattern): must hit.
    engine->ApplyBatch(window_of(r, 1000).data(), 16);
    EXPECT_EQ(engine->footprint_cache_hits(), 1u) << engine->name();
    engine->ApplyBatch(window_of(r, 2000).data(), 16);
    EXPECT_EQ(engine->footprint_cache_hits(), 2u) << engine->name();

    // A query-set change invalidates the memo (the reaches changed): the
    // next window recomputes, the one after hits again.
    engine->AddQuery(1, Parse("(?a)-[s]->(?b)", in));
    engine->ApplyBatch(window_of(r, 3000).data(), 16);
    EXPECT_EQ(engine->footprint_cache_hits(), 2u) << engine->name();
    engine->ApplyBatch(window_of(r, 4000).data(), 16);
    EXPECT_EQ(engine->footprint_cache_hits(), 3u) << engine->name();
  }
}

}  // namespace
}  // namespace gstream
