#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/driver.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/snb.h"

namespace gstream {
namespace server {
namespace {

/// Loopback end-to-end tests: a real TCP server + the client library on
/// 127.0.0.1. The core assertion is oracle equality — the notification
/// sequence pushed through the socket stack must be byte-for-byte the
/// emission sequence of a plain RunStream over the same updates and queries
/// (engines guarantee windowing-independence, so the server's batching can
/// never change what is notified). The rest covers the robustness machinery:
/// slow-client policies, idle disconnects, bad-pattern acks, log-gap resume.
/// ASan/TSan run this file (`sanitizer` label).

/// Hand-written patterns over the SNB label vocabulary (text is what goes
/// over the wire; the server parses against its own interner).
const char* kPatterns[] = {
    "(?a)-[knows]->(?b); (?b)-[knows]->(?c)",
    "(?p)-[posted]->(?m); (?m)-[hasTag]->(?t)",
    "(?a)-[likes]->(?m)",
};
constexpr size_t kNumPatterns = sizeof(kPatterns) / sizeof(kPatterns[0]);

workload::Workload MakeWorkload(size_t updates = 600) {
  workload::SnbConfig cfg;
  cfg.num_updates = updates;
  cfg.seed = 7;
  cfg.num_places = 8;
  cfg.num_tags = 8;
  return workload::GenerateSnb(cfg);
}

std::vector<std::string> DictOf(const StringInterner& interner) {
  std::vector<std::string> dict;
  dict.reserve(interner.size());
  for (uint32_t id = 0; id < interner.size(); ++id)
    dict.push_back(interner.Lookup(id));
  return dict;
}

/// record index -> (sub_id/qid, count) ascending; only non-empty updates.
using NotifySeq = std::map<uint64_t, std::vector<std::pair<uint32_t, uint64_t>>>;

/// The oracle: RunStream over the same engine kind + queries, capturing the
/// exact emission sequence through the accumulator sink.
NotifySeq OracleSequence(EngineKind kind, const workload::Workload& w,
                         size_t num_patterns = kNumPatterns) {
  auto engine = CreateEngine(kind);
  for (uint32_t i = 0; i < num_patterns; ++i) {
    ParseResult pr = ParsePattern(kPatterns[i], *w.interner);
    EXPECT_TRUE(pr.ok) << pr.error;
    engine->AddQuery(i, pr.pattern);
  }
  NotifySeq seq;
  RunStream(*engine, w.stream, {},
            [&seq](uint64_t index, const UpdateResult& r) {
              if (r.per_query.empty()) return;
              auto& counts = seq[index];
              for (const auto& [qid, n] : r.per_query)
                counts.emplace_back(static_cast<uint32_t>(qid), n);
            });
  return seq;
}

/// Streams the workload through a client and collects the pushed sequence.
/// At-least-once delivery across reconnects: re-deliveries must agree.
struct Collector {
  std::mutex mu;
  NotifySeq seq;

  void Bind(Client& client) {
    client.OnNotify([this](const NotifyMsg& m) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = seq.find(m.record_index);
      if (it != seq.end()) {
        EXPECT_EQ(it->second, m.counts)
            << "re-delivered notification diverged at " << m.record_index;
        return;
      }
      seq[m.record_index] = m.counts;
    });
  }

  NotifySeq Take() {
    std::lock_guard<std::mutex> lock(mu);
    return seq;
  }
};

ServerOptions FastServerOptions() {
  ServerOptions opts;
  opts.port = 0;
  opts.batch_window = 16;
  opts.window_flush_millis = 5;
  opts.heartbeat_millis = 50;  // progress acks flow promptly
  return opts;
}

ClientOptions ClientOptionsFor(const Server& server,
                               const std::string& name = "c1") {
  ClientOptions opts;
  opts.port = server.port();
  opts.name = name;
  opts.heartbeat_millis = 50;
  opts.call_timeout_millis = 30000;
  return opts;
}

void SubscribeAll(Client& client, size_t num_patterns = kNumPatterns) {
  for (uint32_t i = 0; i < num_patterns; ++i) {
    SubAckMsg ack;
    std::string err;
    ASSERT_TRUE(client.Subscribe(i, kPatterns[i], &ack, &err)) << err;
    ASSERT_NE(ack.status, static_cast<uint8_t>(SubStatus::kError))
        << ack.message;
    // Single-client subscribe order pins qid == sub_id, which is what makes
    // the oracle comparison line up without a mapping step.
    ASSERT_EQ(ack.qid, i);
  }
}

TEST(ServerLoopback, NotificationsMatchRunStreamOracle) {
  const workload::Workload w = MakeWorkload(600);
  Server server(FastServerOptions());
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  Client client(ClientOptionsFor(server));
  Collector collector;
  collector.Bind(client);
  ASSERT_TRUE(client.Connect(&err)) << err;
  SubscribeAll(client);
  client.SetDictionary(DictOf(*w.interner));
  ASSERT_TRUE(client.StreamEdges(w.stream.updates(), &err)) << err;
  ASSERT_TRUE(client.WaitApplied(w.stream.size(), &err)) << err;
  client.Close();
  server.Drain();

  const NotifySeq oracle = OracleSequence(EngineKind::kTricPlus, w);
  const NotifySeq got = collector.Take();
  EXPECT_FALSE(oracle.empty()) << "workload produced no matches at all";
  EXPECT_EQ(got, oracle);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.records_applied, w.stream.size());
  EXPECT_EQ(stats.notifications_shed, 0u);
  EXPECT_EQ(stats.notifications_produced, stats.notifications_delivered);
}

/// Raw-socket helper: handshake as `name`, optionally subscribing to the
/// notification firehose, then leave the socket unread (a slow consumer).
int RawHandshake(int port, const std::string& name, bool subscribe,
                 uint64_t resume_notify, HelloAckMsg* ack_out,
                 int rcvbuf_bytes = 0) {
  std::string err;
  const int fd = ConnectTcp("127.0.0.1", port, 2000, &err, rcvbuf_bytes);
  EXPECT_GE(fd, 0) << err;
  if (fd < 0) return -1;
  HelloMsg hello;
  hello.name = name;
  hello.resume_notify = resume_notify;
  std::vector<uint8_t> frame = EncodeHello(hello);
  EXPECT_TRUE(SendAll(fd, frame.data(), frame.size()));
  Frame f;
  EXPECT_EQ(ReadFrame(fd, 5000, f, &err), ReadStatus::kOk) << err;
  EXPECT_EQ(f.type, FrameType::kHelloAck);
  if (ack_out != nullptr) {
    EXPECT_TRUE(DecodeHelloAck(f.payload, *ack_out));
  }
  if (subscribe) {
    SubscribeMsg sm;
    sm.sub_id = 100;
    sm.pattern = "(?a)-[knows]->(?b)";  // fires on every knows edge
    frame = EncodeSubscribe(sm);
    EXPECT_TRUE(SendAll(fd, frame.data(), frame.size()));
    EXPECT_EQ(ReadFrame(fd, 5000, f, &err), ReadStatus::kOk) << err;
    EXPECT_EQ(f.type, FrameType::kSubAck);
  }
  return fd;
}

/// Drives the shed/disconnect slow-client policies: a subscriber that stops
/// reading while a producer streams enough matches to overflow its tiny
/// outbound queue.
void RunSlowClientScenario(SlowClientPolicy policy, ServerStats* stats_out,
                           uint64_t* produced_minus_queue) {
  const workload::Workload w = MakeWorkload(900);
  ServerOptions opts = FastServerOptions();
  opts.slow_client = policy;
  opts.outbound_capacity = 2;
  // Tiny kernel buffers on both sides of the slow socket: without them the
  // ~hundreds of KB the kernel buffers absorb every notification and the
  // outbound queue never overflows — whether the policy fired would be a
  // scheduling coin flip. (Both values are clamped up to the kernel minimum;
  // skb truesize overhead means only a handful of small frames fit.)
  opts.sndbuf_bytes = 4096;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  const int slow_fd =
      RawHandshake(server.port(), "slow-sub", /*subscribe=*/true, kNoOffset,
                   nullptr, /*rcvbuf_bytes=*/4096);
  ASSERT_GE(slow_fd, 0);
  // Never read again: the subscriber's queue backs up at capacity 2.

  Client producer(ClientOptionsFor(server, "producer"));
  ASSERT_TRUE(producer.Connect(&err)) << err;
  producer.SetDictionary(DictOf(*w.interner));
  ASSERT_TRUE(producer.StreamEdges(w.stream.updates(), &err)) << err;
  ASSERT_TRUE(producer.WaitApplied(w.stream.size(), &err)) << err;
  producer.Close();

  // Unblock any writer stuck on the slow socket, then drain.
  ShutdownFd(slow_fd);
  server.Drain();
  CloseFd(slow_fd);
  *stats_out = server.stats();
  *produced_minus_queue =
      stats_out->notifications_delivered + stats_out->notifications_shed;
}

TEST(ServerLoopback, SlowClientShedOldestCountsEveryLoss) {
  ServerStats stats;
  uint64_t accounted = 0;
  RunSlowClientScenario(SlowClientPolicy::kShedOldest, &stats, &accounted);
  EXPECT_GT(stats.notifications_produced, 0u);
  EXPECT_GT(stats.notifications_shed, 0u) << "queue capacity 2 never shed?";
  // The reconciliation invariant: every produced notification is either
  // delivered or counted shed once the queues are gone.
  EXPECT_EQ(stats.notifications_produced, accounted);
}

TEST(ServerLoopback, SlowClientDisconnectPolicyFires) {
  ServerStats stats;
  uint64_t accounted = 0;
  RunSlowClientScenario(SlowClientPolicy::kDisconnect, &stats, &accounted);
  EXPECT_GE(stats.slow_disconnects, 1u);
  EXPECT_EQ(stats.notifications_produced, accounted);
}

TEST(ServerLoopback, IdleConnectionIsDisconnected) {
  ServerOptions opts = FastServerOptions();
  opts.heartbeat_millis = 50;
  opts.idle_timeout_millis = 200;
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  // Handshake, then total silence — no heartbeats. The server must evict us.
  const int fd = RawHandshake(server.port(), "mute", /*subscribe=*/false,
                              kNoOffset, nullptr);
  ASSERT_GE(fd, 0);
  bool saw_idle_error = false;
  for (int i = 0; i < 50; ++i) {
    Frame f;
    const ReadStatus st = ReadFrame(fd, 200, f, &err);
    if (st == ReadStatus::kClosed || st == ReadStatus::kError) break;
    if (st == ReadStatus::kOk && f.type == FrameType::kError) {
      ErrorMsg em;
      ASSERT_TRUE(DecodeError(f.payload, em));
      EXPECT_EQ(em.code, static_cast<uint16_t>(ErrorCode::kIdleTimeout));
      saw_idle_error = true;
    }
  }
  CloseFd(fd);
  EXPECT_TRUE(saw_idle_error);
  server.Drain();
  EXPECT_GE(server.stats().idle_disconnects, 1u);
}

TEST(ServerLoopback, BadPatternAcksErrorAndConnectionSurvives) {
  Server server(FastServerOptions());
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  Client client(ClientOptionsFor(server));
  ASSERT_TRUE(client.Connect(&err)) << err;

  SubAckMsg ack;
  ASSERT_TRUE(client.Subscribe(0, "this is not a pattern", &ack, &err)) << err;
  EXPECT_EQ(ack.status, static_cast<uint8_t>(SubStatus::kError));
  EXPECT_FALSE(ack.message.empty());

  // Same connection keeps working: a valid pattern subscribes normally.
  ASSERT_TRUE(client.Subscribe(1, kPatterns[0], &ack, &err)) << err;
  EXPECT_EQ(ack.status, static_cast<uint8_t>(SubStatus::kNew));
  EXPECT_EQ(client.stats().reconnects, 0u);
  client.Close();
  server.Drain();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(ServerLoopback, ResumePastTrimmedLogReportsGap) {
  const workload::Workload w = MakeWorkload(900);
  ServerOptions opts = FastServerOptions();
  opts.notify_log_capacity = 8;  // force the log to trim
  Server server(opts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  Client producer(ClientOptionsFor(server, "producer"));
  ASSERT_TRUE(producer.Connect(&err)) << err;
  SubscribeAll(producer);
  producer.SetDictionary(DictOf(*w.interner));
  ASSERT_TRUE(producer.StreamEdges(w.stream.updates(), &err)) << err;
  ASSERT_TRUE(producer.WaitApplied(w.stream.size(), &err)) << err;
  const uint64_t notifies = producer.stats().notifies;
  ASSERT_GT(notifies, 8u) << "need more matches than the log holds";
  producer.Close();

  // A subscriber asking for "everything from record 0" cannot be served
  // from an 8-entry log: the ack must say kGap and point at the log start.
  HelloAckMsg ack;
  const int fd = RawHandshake(server.port(), "late-sub", /*subscribe=*/false,
                              /*resume_notify=*/0, &ack);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ack.resume_status, static_cast<uint8_t>(ResumeStatus::kGap));
  EXPECT_GT(ack.notify_log_start, 0u);
  CloseFd(fd);
  server.Drain();
}

TEST(ServerLoopback, DrainAnnouncesBoundaryToClients) {
  const workload::Workload w = MakeWorkload(300);
  Server server(FastServerOptions());
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  Client client(ClientOptionsFor(server));
  ASSERT_TRUE(client.Connect(&err)) << err;
  SubscribeAll(client);
  client.SetDictionary(DictOf(*w.interner));
  ASSERT_TRUE(client.StreamEdges(w.stream.updates(), &err)) << err;
  ASSERT_TRUE(client.WaitApplied(w.stream.size(), &err)) << err;

  server.Drain();
  // The Drain frame must reach the attached client before its socket closes.
  for (int i = 0; i < 100 && !client.drained(); ++i) ::usleep(20 * 1000);
  EXPECT_TRUE(client.drained());
  client.Close();
}

}  // namespace
}  // namespace server
}  // namespace gstream
