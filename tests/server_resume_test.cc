#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/driver.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/snb.h"

namespace gstream {
namespace server {
namespace {

/// Crash/reconnect-resume tests: kill the server mid-stream (kill -9
/// semantics — no flush, no final snapshot), restart it on the same journal
/// + state files, point the same client at the new port, and require the
/// full notification sequence — across both server lifetimes — to equal the
/// RunStream oracle. Runs the whole matrix of view engines, plus the
/// network-side fault family (torn/duplicated/reordered/delayed frames,
/// mid-handshake resets) on the same convergence criterion.

const char* kPatterns[] = {
    "(?a)-[knows]->(?b); (?b)-[knows]->(?c)",
    "(?p)-[posted]->(?m); (?m)-[hasTag]->(?t)",
    "(?a)-[likes]->(?m)",
};
constexpr size_t kNumPatterns = sizeof(kPatterns) / sizeof(kPatterns[0]);

workload::Workload MakeWorkload(size_t updates, uint64_t seed = 13) {
  workload::SnbConfig cfg;
  cfg.num_updates = updates;
  cfg.seed = seed;
  cfg.num_places = 8;
  cfg.num_tags = 8;
  return workload::GenerateSnb(cfg);
}

std::vector<std::string> DictOf(const StringInterner& interner) {
  std::vector<std::string> dict;
  dict.reserve(interner.size());
  for (uint32_t id = 0; id < interner.size(); ++id)
    dict.push_back(interner.Lookup(id));
  return dict;
}

using NotifySeq = std::map<uint64_t, std::vector<std::pair<uint32_t, uint64_t>>>;

NotifySeq OracleSequence(EngineKind kind, const workload::Workload& w) {
  auto engine = CreateEngine(kind);
  for (uint32_t i = 0; i < kNumPatterns; ++i) {
    ParseResult pr = ParsePattern(kPatterns[i], *w.interner);
    EXPECT_TRUE(pr.ok) << pr.error;
    engine->AddQuery(i, pr.pattern);
  }
  NotifySeq seq;
  RunStream(*engine, w.stream, {},
            [&seq](uint64_t index, const UpdateResult& r) {
              if (r.per_query.empty()) return;
              auto& counts = seq[index];
              for (const auto& [qid, n] : r.per_query)
                counts.emplace_back(static_cast<uint32_t>(qid), n);
            });
  return seq;
}

struct Collector {
  std::mutex mu;
  NotifySeq seq;

  void Bind(Client& client) {
    client.OnNotify([this](const NotifyMsg& m) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = seq.find(m.record_index);
      if (it != seq.end()) {
        // At-least-once re-delivery after a resume must agree exactly.
        EXPECT_EQ(it->second, m.counts)
            << "re-delivered notification diverged at " << m.record_index;
        return;
      }
      seq[m.record_index] = m.counts;
    });
  }

  NotifySeq Take() {
    std::lock_guard<std::mutex> lock(mu);
    return seq;
  }
};

struct Paths {
  std::string journal;
  std::string state;

  explicit Paths(const std::string& tag) {
    // Pid-scoped so concurrent runs of this binary never share a journal.
    const std::string base =
        testing::TempDir() + "/server_" + std::to_string(::getpid()) + "_" + tag;
    journal = base + ".gsb";
    state = base + ".state";
    std::remove(journal.c_str());
    std::remove(state.c_str());
  }
  ~Paths() {
    std::remove(journal.c_str());
    std::remove(state.c_str());
  }
};

ServerOptions DurableOptions(const Paths& paths, EngineKind kind) {
  ServerOptions opts;
  opts.port = 0;
  opts.engine = kind;
  opts.batch_window = 16;
  opts.window_flush_millis = 5;
  opts.heartbeat_millis = 50;
  opts.journal_path = paths.journal;
  opts.state_path = paths.state;
  opts.snapshot_every_windows = 2;
  return opts;
}

ClientOptions FastClientOptions(int port, const std::string& name = "c1") {
  ClientOptions opts;
  opts.port = port;
  opts.name = name;
  opts.heartbeat_millis = 50;
  opts.call_timeout_millis = 60000;
  return opts;
}

void SubscribeAll(Client& client) {
  for (uint32_t i = 0; i < kNumPatterns; ++i) {
    SubAckMsg ack;
    std::string err;
    ASSERT_TRUE(client.Subscribe(i, kPatterns[i], &ack, &err)) << err;
    ASSERT_NE(ack.status, static_cast<uint8_t>(SubStatus::kError))
        << ack.message;
  }
}

/// The tentpole acceptance criterion: kill + restart + reconnect yields the
/// oracle's exact notification sequence, for every view engine.
TEST(ServerResume, KillAndResumeMatchesOracleAcrossEngines) {
  for (EngineKind kind : PaperEngineKinds()) {
    if (kind == EngineKind::kGraphDb) continue;  // no incremental view state
    SCOPED_TRACE(EngineKindName(kind));
    const workload::Workload w = MakeWorkload(500);
    const size_t half = w.stream.size() / 2;
    const std::vector<EdgeUpdate>& all = w.stream.updates();
    Paths paths(std::string("kill_") + EngineKindName(kind));

    auto server = std::make_unique<Server>(DurableOptions(paths, kind));
    std::string err;
    ASSERT_TRUE(server->Start(&err)) << err;

    Client client(FastClientOptions(server->port()));
    Collector collector;
    collector.Bind(client);
    ASSERT_TRUE(client.Connect(&err)) << err;
    SubscribeAll(client);
    client.SetDictionary(DictOf(*w.interner));
    ASSERT_TRUE(client.StreamEdges(
        std::vector<EdgeUpdate>(all.begin(), all.begin() + half), &err))
        << err;
    ASSERT_TRUE(client.WaitApplied(half, &err)) << err;

    // Crash: no flush, no boundary snapshot. Recovery must rebuild from the
    // journal prefix + the last cadence snapshot.
    server->Kill();
    server = std::make_unique<Server>(DurableOptions(paths, kind));
    ASSERT_TRUE(server->Start(&err)) << err;
    EXPECT_EQ(server->applied_records(), half)
        << "journal replay lost or invented records";

    client.set_port(server->port());
    ASSERT_TRUE(client.StreamEdges(
        std::vector<EdgeUpdate>(all.begin() + half, all.end()), &err))
        << err;
    ASSERT_TRUE(client.WaitApplied(all.size(), &err)) << err;
    client.Close();
    server->Drain();

    const NotifySeq oracle = OracleSequence(kind, w);
    EXPECT_FALSE(oracle.empty());
    EXPECT_EQ(collector.Take(), oracle);
    // applied_records counts recovered + new: the full stream, exactly once.
    EXPECT_EQ(server->stats().records_applied, all.size());
  }
}

/// Network-side fault family: the client's reconnect-resume machinery must
/// converge to the oracle sequence through torn frames, duplicated frames,
/// reordered frames (which the server rejects as sequence gaps), stalled
/// links, and connections reset mid-handshake.
TEST(ServerResume, WireFaultsStillConvergeToOracle) {
  const workload::Workload w = MakeWorkload(400, /*seed=*/17);
  ServerOptions sopts;
  sopts.port = 0;
  sopts.batch_window = 16;
  sopts.window_flush_millis = 5;
  sopts.heartbeat_millis = 50;
  Server server(sopts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  ClientOptions copts = FastClientOptions(server.port());
  copts.edges_per_frame = 16;  // many frames => every fault kind fires
  copts.faults.tear_frame = 5;
  copts.faults.dup_every = 5;
  copts.faults.reorder_every = 7;
  copts.faults.delay_every = 9;
  copts.faults.delay_micros = 500;
  copts.faults.handshake_resets = 2;
  copts.fault_seed = 23;
  copts.max_reconnects = 20;
  Client client(copts);
  Collector collector;
  collector.Bind(client);
  ASSERT_TRUE(client.Connect(&err)) << err;
  SubscribeAll(client);
  client.SetDictionary(DictOf(*w.interner));
  ASSERT_TRUE(client.StreamEdges(w.stream.updates(), &err)) << err;
  const bool applied_ok = client.WaitApplied(w.stream.size(), &err);
  if (!applied_ok) {
    // Counter snapshot localizes where records went missing: accepted <
    // applied target means the wire lost them, accepted == target but
    // applied short means the apply pipeline wedged.
    const ServerStats ss = server.stats();
    const ClientStats cs = client.stats();
    ASSERT_TRUE(applied_ok)
        << err << " [server: accepted=" << ss.records_accepted
        << " applied=" << ss.records_applied
        << " dup_skipped=" << ss.duplicate_records_skipped
        << " protocol_errors=" << ss.protocol_errors
        << " windows=" << ss.windows_finalized
        << "; client: sent=" << cs.records_sent
        << " connects=" << cs.connects << " reconnects=" << cs.reconnects
        << " torn=" << cs.faults_torn << " dup=" << cs.faults_duplicated
        << " reorder=" << cs.faults_reordered << "]";
  }
  client.Close();
  server.Drain();

  // Convergence despite the chaos…
  EXPECT_EQ(server.stats().records_applied, w.stream.size());
  EXPECT_EQ(collector.Take(), OracleSequence(EngineKind::kTricPlus, w));

  // …and the chaos actually happened.
  const ClientStats cs = client.stats();
  EXPECT_EQ(cs.handshake_resets, 2u);
  EXPECT_GE(cs.faults_torn, 1u);
  EXPECT_GE(cs.faults_duplicated, 1u);
  EXPECT_GE(cs.faults_reordered, 1u);
  EXPECT_GE(cs.reconnects, 3u);  // resets + torn/reordered disconnects
  EXPECT_GT(server.stats().duplicate_records_skipped, 0u)
      << "at-least-once resend overlap never exercised";
}

/// Mid-stream subscription + crash: recovery must re-register each
/// subscription at its original registration offset, not at record 0. The
/// stream is hand-built so the subscribed pattern matches at known indices:
/// a late subscriber whose pattern matched records *before* it registered
/// must recover cleanly (registering it early would diverge the boundary
/// counter/fingerprint cross-check) and must never be sent notifications
/// from before its registration — neither live nor from the rebuilt,
/// registration-offset-filtered notification log it resumes against.
TEST(ServerResume, MidStreamSubscriberRecoveryFiltersByRegistrationOffset) {
  const char* kLikes = "(?a)-[likes]->(?m)";
  std::vector<std::string> dict;
  auto intern = [&dict](const std::string& s) {
    for (uint32_t i = 0; i < dict.size(); ++i)
      if (dict[i] == s) return i;
    dict.push_back(s);
    return static_cast<uint32_t>(dict.size() - 1);
  };
  const uint32_t likes = intern("likes");
  const uint32_t knows = intern("knows");
  // Fresh endpoints per edge: every 'likes' edge is exactly one new
  // embedding of kLikes, and 'knows' filler matches nothing.
  std::vector<EdgeUpdate> edges;
  std::vector<uint64_t> like_indices;
  auto add_like = [&]() {
    const size_t n = edges.size();
    like_indices.push_back(n);
    edges.push_back({intern("a" + std::to_string(n)), likes,
                     intern("m" + std::to_string(n))});
  };
  auto add_filler = [&]() {
    const size_t n = edges.size();
    edges.push_back({intern("x" + std::to_string(n)), knows,
                     intern("y" + std::to_string(n))});
  };
  // Phase A [0, 32): pre-registration matches the late subscriber must
  // never see.
  for (size_t i = 0; i < 32; ++i)
    (i % 8 == 5) ? add_like() : add_filler();
  const size_t kRegisterAt = 32;
  // Phase B [32, 96): match-free filler; spans several snapshot cadences so
  // the late subscription is durably persisted before the crash.
  while (edges.size() < 96) add_filler();
  // Phase C [96, 112): post-restart matches both subscribers receive.
  std::vector<EdgeUpdate> tail;
  {
    const size_t start = edges.size();
    for (size_t i = 0; i < 16; ++i)
      (i == 4 || i == 9) ? add_like() : add_filler();
    tail.assign(edges.begin() + start, edges.end());
    edges.resize(start);
  }

  Paths paths("mid_sub");
  auto server =
      std::make_unique<Server>(DurableOptions(paths, EngineKind::kTricPlus));
  std::string err;
  ASSERT_TRUE(server->Start(&err)) << err;

  Client c1(FastClientOptions(server->port(), "c1"));
  Collector col1;
  col1.Bind(c1);
  ASSERT_TRUE(c1.Connect(&err)) << err;
  {
    SubAckMsg ack;
    ASSERT_TRUE(c1.Subscribe(0, kLikes, &ack, &err)) << err;
    ASSERT_EQ(ack.status, static_cast<uint8_t>(SubStatus::kNew));
  }
  c1.SetDictionary(dict);
  ASSERT_TRUE(c1.StreamEdges(
      std::vector<EdgeUpdate>(edges.begin(), edges.begin() + kRegisterAt),
      &err))
      << err;
  ASSERT_TRUE(c1.WaitApplied(kRegisterAt, &err)) << err;

  // The late subscriber: same pattern, registered at offset 32.
  Client c2(FastClientOptions(server->port(), "c2"));
  Collector col2;
  col2.Bind(c2);
  ASSERT_TRUE(c2.Connect(&err)) << err;
  {
    SubAckMsg ack;
    ASSERT_TRUE(c2.Subscribe(0, kLikes, &ack, &err)) << err;
    ASSERT_EQ(ack.status, static_cast<uint8_t>(SubStatus::kNew));
  }

  ASSERT_TRUE(c1.StreamEdges(
      std::vector<EdgeUpdate>(edges.begin() + kRegisterAt, edges.end()),
      &err))
      << err;
  ASSERT_TRUE(c1.WaitApplied(edges.size(), &err)) << err;

  // Crash. Recovery fast-forwards the journal; it must register c2's query
  // at offset 32, or phase A's matches diverge the boundary cross-check and
  // recovery itself fails here.
  server->Kill();
  server =
      std::make_unique<Server>(DurableOptions(paths, EngineKind::kTricPlus));
  ASSERT_TRUE(server->Start(&err)) << err;
  EXPECT_EQ(server->applied_records(), edges.size());

  // c2 reconnects having seen nothing: Hello.resume_notify = 0 asks for the
  // whole rebuilt notification log. The registration-offset filter must
  // leave nothing for it (phase A predates its registration; phases B on
  // are match-free so far).
  c2.set_port(server->port());
  // Connect may no-op until the client's reader notices the dead socket;
  // the restarted server's applied count in the hello ack proves a fresh
  // handshake (and thus the notify-log replay) actually happened.
  bool rehandshaked = false;
  for (int i = 0; i < 200 && !rehandshaked; ++i) {
    ASSERT_TRUE(c2.Connect(&err)) << err;
    rehandshaked = c2.last_hello_ack().applied_records >= edges.size();
    if (!rehandshaked) ::usleep(10 * 1000);
  }
  ASSERT_TRUE(rehandshaked);

  c1.set_port(server->port());
  ASSERT_TRUE(c1.StreamEdges(tail, &err)) << err;
  ASSERT_TRUE(c1.WaitApplied(edges.size() + tail.size(), &err)) << err;

  // c2's notifications arrive on a push channel it never synchronizes on;
  // poll until the expected two phase-C entries land.
  for (int i = 0; i < 200 && col2.Take().size() < 2; ++i) ::usleep(10 * 1000);
  c1.Close();
  c2.Close();
  server->Drain();

  NotifySeq expect_c1, expect_c2;
  for (uint64_t idx : like_indices) {
    expect_c1[idx] = {{0u, 1u}};
    if (idx >= kRegisterAt) expect_c2[idx] = {{0u, 1u}};
  }
  EXPECT_EQ(col1.Take(), expect_c1);
  EXPECT_EQ(col2.Take(), expect_c2);
}

/// Recovery sanity: a journal written by one engine kind must refuse to
/// restart under another (replaying tric+ windows into inv would silently
/// rebuild different view state).
TEST(ServerResume, WrongEngineRecoveryIsRejected) {
  const workload::Workload w = MakeWorkload(200);
  Paths paths("wrong_engine");
  {
    Server server(DurableOptions(paths, EngineKind::kTricPlus));
    std::string err;
    ASSERT_TRUE(server.Start(&err)) << err;
    Client client(FastClientOptions(server.port()));
    ASSERT_TRUE(client.Connect(&err)) << err;
    client.SetDictionary(DictOf(*w.interner));
    ASSERT_TRUE(client.StreamEdges(w.stream.updates(), &err)) << err;
    ASSERT_TRUE(client.WaitApplied(w.stream.size(), &err)) << err;
    client.Close();
    server.Drain();
  }
  Server wrong(DurableOptions(paths, EngineKind::kInv));
  std::string err;
  EXPECT_FALSE(wrong.Start(&err));
  EXPECT_NE(err.find("engine"), std::string::npos) << err;
}

/// Graceful SIGTERM drain: the boundary snapshot is written, clients get the
/// Drain frame, and a restart resumes exactly where the drain stopped —
/// including a subscriber that reconnects and keeps receiving.
TEST(ServerResume, DrainThenRestartResumesExactly) {
  const workload::Workload w = MakeWorkload(400);
  const size_t half = w.stream.size() / 2;
  const std::vector<EdgeUpdate>& all = w.stream.updates();
  Paths paths("drain_restart");

  auto server =
      std::make_unique<Server>(DurableOptions(paths, EngineKind::kTricPlus));
  std::string err;
  ASSERT_TRUE(server->Start(&err)) << err;

  Client client(FastClientOptions(server->port()));
  Collector collector;
  collector.Bind(client);
  DrainMsg drain_msg;
  std::mutex drain_mu;
  client.OnDrain([&](const DrainMsg& m) {
    std::lock_guard<std::mutex> lock(drain_mu);
    drain_msg = m;
  });
  ASSERT_TRUE(client.Connect(&err)) << err;
  SubscribeAll(client);
  client.SetDictionary(DictOf(*w.interner));
  ASSERT_TRUE(client.StreamEdges(
      std::vector<EdgeUpdate>(all.begin(), all.begin() + half), &err))
      << err;
  ASSERT_TRUE(client.WaitApplied(half, &err)) << err;

  server->Drain();
  for (int i = 0; i < 200 && !client.drained(); ++i) ::usleep(10 * 1000);
  ASSERT_TRUE(client.drained());
  {
    std::lock_guard<std::mutex> lock(drain_mu);
    EXPECT_EQ(drain_msg.applied_records, half);
    EXPECT_EQ(drain_msg.snapshot_written, 1);
  }

  server = std::make_unique<Server>(
      DurableOptions(paths, EngineKind::kTricPlus));
  ASSERT_TRUE(server->Start(&err)) << err;
  // The boundary snapshot covers the full drained prefix, so the restarted
  // server recovers exactly `half` without inventing or losing records.
  EXPECT_EQ(server->applied_records(), half);

  client.set_port(server->port());
  ASSERT_TRUE(client.StreamEdges(
      std::vector<EdgeUpdate>(all.begin() + half, all.end()), &err))
      << err;
  ASSERT_TRUE(client.WaitApplied(all.size(), &err)) << err;
  client.Close();
  server->Drain();

  EXPECT_EQ(collector.Take(), OracleSequence(EngineKind::kTricPlus, w));
}

}  // namespace
}  // namespace server
}  // namespace gstream
