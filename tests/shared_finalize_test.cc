#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/parser.h"
#include "workload/query_gen.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace gstream {
namespace {

/// Shared window finalization (DESIGN.md §9) must be a pure execution
/// strategy: grouping signature-equal queries and fanning one tagged
/// final-join pass out to the whole group has to produce byte-identical
/// results to the per-(query, window) passes of PR 3 — across every view
/// engine, window partition, thread count, and mid-stream query lifecycle
/// event (the fig12e high-overlap regime is where the sharing actually
/// collapses work, so that is what these suites stress).

const EngineKind kViewKinds[] = {EngineKind::kTric, EngineKind::kTricPlus,
                                 EngineKind::kInv,  EngineKind::kInvPlus,
                                 EngineKind::kInc,  EngineKind::kIncPlus};

QueryPattern Parse(const std::string& text, StringInterner& in) {
  ParseResult r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

/// Applies `updates` in windows of `window`, removing the queries listed in
/// `removals` (keyed by stream position) between windows, on three engines:
/// shared finalize (default), shared finalize disabled, and sequential
/// per-update. All three must agree exactly, per update.
void ExpectSharedAgrees(EngineKind kind, const std::vector<QueryPattern>& queries,
                        const std::vector<EdgeUpdate>& updates, size_t window,
                        int threads,
                        const std::map<size_t, std::vector<QueryId>>& removals,
                        const std::string& label) {
  auto shared = CreateEngine(kind);
  auto unshared = CreateEngine(kind);
  auto sequential = CreateEngine(kind);
  unshared->SetSharedFinalize(false);
  for (QueryId qid = 0; qid < queries.size(); ++qid) {
    shared->AddQuery(qid, queries[qid]);
    unshared->AddQuery(qid, queries[qid]);
    sequential->AddQuery(qid, queries[qid]);
  }
  shared->SetBatchThreads(threads);
  unshared->SetBatchThreads(threads);

  size_t pos = 0;
  while (pos < updates.size()) {
    auto rm = removals.find(pos);
    if (rm != removals.end()) {
      for (QueryId qid : rm->second) {
        ASSERT_TRUE(shared->RemoveQuery(qid)) << label;
        ASSERT_TRUE(unshared->RemoveQuery(qid)) << label;
        ASSERT_TRUE(sequential->RemoveQuery(qid)) << label;
      }
    }
    const size_t n = std::min(window, updates.size() - pos);
    std::vector<UpdateResult> got_shared = shared->ApplyBatch(&updates[pos], n);
    std::vector<UpdateResult> got_unshared = unshared->ApplyBatch(&updates[pos], n);
    ASSERT_EQ(got_shared.size(), n) << label;  // no budget, so no short windows
    ASSERT_EQ(got_unshared.size(), n) << label;
    for (size_t k = 0; k < n; ++k) {
      const UpdateResult expected = sequential->ApplyUpdate(updates[pos + k]);
      ASSERT_EQ(got_shared[k].changed, expected.changed)
          << label << ": " << shared->name() << " window=" << window
          << " threads=" << threads << " at update " << pos + k;
      ASSERT_EQ(got_shared[k].per_query, expected.per_query)
          << label << ": " << shared->name() << " window=" << window
          << " threads=" << threads << " at update " << pos + k;
      ASSERT_EQ(got_shared[k].triggered, expected.triggered)
          << label << ": " << shared->name() << " at update " << pos + k;
      ASSERT_EQ(got_shared[k].per_query, got_unshared[k].per_query)
          << label << ": " << shared->name() << " shared vs unshared at update "
          << pos + k;
      ASSERT_EQ(got_shared[k].triggered, got_unshared[k].triggered)
          << label << ": " << shared->name() << " shared vs unshared at update "
          << pos + k;
    }
    pos += n;
  }
  // Sharing never runs *more* passes than the per-query pipeline.
  EXPECT_LE(shared->final_join_passes(), unshared->final_join_passes())
      << label << ": " << shared->name();
  EXPECT_EQ(unshared->shared_finalize_groups(), 0u) << label;
}

TEST(SharedFinalizeDirected, PassesCollapseToDistinctSignatures) {
  // The acceptance gauge: K queries per signature, one delta window — the
  // shared engine runs one pass per *distinct signature*, the unshared one
  // per query. Two signatures, four queries each.
  StringInterner in;
  QueryPattern chain = Parse("(?a)-[knows]->(?b); (?b)-[knows]->(?c)", in);
  QueryPattern single = Parse("(?x)-[likes]->(?y)", in);
  LabelId knows = in.Intern("knows");
  LabelId likes = in.Intern("likes");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  std::vector<EdgeUpdate> inserts;
  for (int i = 0; i < 8; ++i)
    inserts.push_back({v(i), knows, v(i + 1), UpdateOp::kAdd});
  for (int i = 0; i < 4; ++i)
    inserts.push_back({v(i), likes, v(i + 7), UpdateOp::kAdd});

  constexpr QueryId kPerSignature = 4;
  for (EngineKind kind : kViewKinds) {
    auto shared = CreateEngine(kind);
    auto unshared = CreateEngine(kind);
    unshared->SetSharedFinalize(false);
    for (QueryId q = 0; q < kPerSignature; ++q) {
      shared->AddQuery(q, chain);
      unshared->AddQuery(q, chain);
      shared->AddQuery(kPerSignature + q, single);
      unshared->AddQuery(kPerSignature + q, single);
    }

    std::vector<UpdateResult> a = shared->ApplyBatch(inserts.data(), inserts.size());
    std::vector<UpdateResult> b = unshared->ApplyBatch(inserts.data(), inserts.size());
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].per_query, b[k].per_query)
          << shared->name() << " at update " << k;
    }

    // One window, both signatures affected and feasible: 2 passes vs 8.
    EXPECT_EQ(shared->final_join_passes(), 2u) << shared->name();
    EXPECT_EQ(shared->shared_finalize_groups(), 2u) << shared->name();
    EXPECT_EQ(unshared->final_join_passes(), 2u * kPerSignature) << unshared->name();
  }
}

TEST(SharedFinalizeDirected, RemoveQueryInvalidatesSignatureGroups) {
  // Mid-stream RemoveQuery of a group member must rebuild the grouping: a
  // 3-query group keeps sharing as a 2-query group, and the last survivor
  // degenerates to the plain per-query path (no shared passes).
  StringInterner in;
  QueryPattern q = Parse("(?a)-[r]->(?b); (?b)-[r]->(?c)", in);
  LabelId rl = in.Intern("r");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };
  auto window_at = [&](int base) {
    std::vector<EdgeUpdate> w;
    for (int i = base; i < base + 6; ++i)
      w.push_back({v(i), rl, v(i + 1), UpdateOp::kAdd});
    return w;
  };

  for (EngineKind kind : kViewKinds) {
    auto engine = CreateEngine(kind);
    engine->AddQuery(0, q);
    engine->AddQuery(1, q);
    engine->AddQuery(2, q);

    std::vector<EdgeUpdate> w1 = window_at(0);
    engine->ApplyBatch(w1.data(), w1.size());
    EXPECT_EQ(engine->final_join_passes(), 1u) << engine->name();
    EXPECT_EQ(engine->shared_finalize_groups(), 1u) << engine->name();

    ASSERT_TRUE(engine->RemoveQuery(1));
    std::vector<EdgeUpdate> w2 = window_at(20);
    engine->ApplyBatch(w2.data(), w2.size());
    EXPECT_EQ(engine->final_join_passes(), 2u)
        << engine->name() << " (2-member group still shares one pass)";
    EXPECT_EQ(engine->shared_finalize_groups(), 2u) << engine->name();

    ASSERT_TRUE(engine->RemoveQuery(0));
    std::vector<EdgeUpdate> w3 = window_at(40);
    engine->ApplyBatch(w3.data(), w3.size());
    EXPECT_EQ(engine->final_join_passes(), 3u)
        << engine->name() << " (singleton: per-query path)";
    EXPECT_EQ(engine->shared_finalize_groups(), 2u)
        << engine->name() << " (no new shared pass after the group dissolved)";
  }
}

TEST(SharedFinalizeDirected, MidStreamAddQueryJoinsGroup) {
  // A query registered between windows joins an existing signature group and
  // is served by the shared pass from the next window on — with the same
  // notifications the per-query pipeline reports (INV's diff baseline is the
  // interesting case: the newcomer snapshots its total at registration).
  StringInterner in;
  QueryPattern q = Parse("(?a)-[r]->(?b); (?b)-[s]->(?c)", in);
  LabelId rl = in.Intern("r");
  LabelId sl = in.Intern("s");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  std::vector<EdgeUpdate> w1, w2;
  for (int i = 0; i < 4; ++i) {
    w1.push_back({v(2 * i), rl, v(2 * i + 1), UpdateOp::kAdd});
    w1.push_back({v(2 * i + 1), sl, v(2 * i + 2), UpdateOp::kAdd});
  }
  for (int i = 10; i < 14; ++i) {
    w2.push_back({v(2 * i), rl, v(2 * i + 1), UpdateOp::kAdd});
    w2.push_back({v(2 * i + 1), sl, v(2 * i + 2), UpdateOp::kAdd});
    w2.push_back({v(2 * i + 2), rl, v(2 * i), UpdateOp::kAdd});
  }

  for (EngineKind kind : kViewKinds) {
    auto shared = CreateEngine(kind);
    auto unshared = CreateEngine(kind);
    unshared->SetSharedFinalize(false);
    shared->AddQuery(0, q);
    unshared->AddQuery(0, q);

    std::vector<UpdateResult> a1 = shared->ApplyBatch(w1.data(), w1.size());
    std::vector<UpdateResult> b1 = unshared->ApplyBatch(w1.data(), w1.size());
    for (size_t k = 0; k < a1.size(); ++k)
      ASSERT_EQ(a1[k].per_query, b1[k].per_query) << shared->name();

    shared->AddQuery(1, q);
    unshared->AddQuery(1, q);
    const uint64_t passes_before = shared->final_join_passes();

    std::vector<UpdateResult> a2 = shared->ApplyBatch(w2.data(), w2.size());
    std::vector<UpdateResult> b2 = unshared->ApplyBatch(w2.data(), w2.size());
    for (size_t k = 0; k < a2.size(); ++k)
      ASSERT_EQ(a2[k].per_query, b2[k].per_query)
          << shared->name() << " at update " << k;

    EXPECT_EQ(shared->final_join_passes(), passes_before + 1)
        << shared->name() << " (newcomer served by the group's pass)";
    EXPECT_GE(shared->shared_finalize_groups(), 1u) << shared->name();
  }
}

TEST(SharedFinalizeDirected, DifferentConstraintsNeverGroup) {
  // Same structure, different §4.3 property constraints: the filter spec is
  // part of the signature, so these queries must not share a pass (a fanned-
  // out result would leak one query's constraint filtering into the other).
  StringInterner in;
  LabelId rl = in.Intern("r");
  LabelId age = in.Intern("age");
  auto v = [&](int i) { return in.Intern("v" + std::to_string(i)); };

  QueryPattern plain;
  {
    uint32_t a = plain.AddVariable("?a");
    uint32_t b = plain.AddVariable("?b");
    plain.AddEdge(a, rl, b);
  }
  QueryPattern constrained = plain;
  constrained.AddConstraint(0, age, QueryPattern::CmpOp::kGe, 5);

  std::vector<EdgeUpdate> inserts;
  for (int i = 0; i < 6; ++i)
    inserts.push_back({v(i), rl, v(i + 1), UpdateOp::kAdd});

  for (EngineKind kind : kViewKinds) {
    auto engine = CreateEngine(kind);
    engine->AddQuery(0, plain);
    engine->AddQuery(1, constrained);
    std::vector<UpdateResult> got = engine->ApplyBatch(inserts.data(), inserts.size());
    EXPECT_EQ(engine->final_join_passes(), 2u) << engine->name();
    EXPECT_EQ(engine->shared_finalize_groups(), 0u) << engine->name();
    // No property store attached: the constrained query matches nothing, the
    // plain one matches every insert.
    for (size_t k = 0; k < got.size(); ++k) {
      ASSERT_EQ(got[k].per_query.size(), 1u) << engine->name() << " update " << k;
      EXPECT_EQ(got[k].per_query[0].first, 0u) << engine->name();
    }
  }
}

TEST(SharedFinalizeAgreement, HighOverlapRandomizedStreams) {
  // fig12e-style: generated query sets at the paper's highest overlap, so
  // many queries share covering-path signatures. Shared finalize must agree
  // with both the unshared batch pipeline and sequential execution across
  // datasets, window sizes, and thread counts — including deletions (window
  // barriers) inside the stream.
  struct Case {
    const char* dataset;
    size_t stream_len;
    size_t num_queries;
    size_t window;
    int threads;
    uint64_t seed;
  };
  const Case cases[] = {
      {"snb", 260, 40, 16, 1, 7},
      {"snb", 260, 40, 32, 3, 11},
      {"taxi", 220, 32, 7, 1, 13},
      {"taxi", 220, 32, 16, 3, 17},
  };
  for (const Case& c : cases) {
    workload::Workload w;
    if (std::string(c.dataset) == "snb") {
      workload::SnbConfig config;
      config.num_updates = c.stream_len;
      config.seed = c.seed;
      config.num_places = 8;
      config.num_tags = 8;
      w = workload::GenerateSnb(config);
    } else {
      workload::TaxiConfig config;
      config.num_updates = c.stream_len;
      config.seed = c.seed;
      config.num_zones = 10;
      w = workload::GenerateTaxi(config);
    }
    workload::QueryGenConfig qcfg;
    qcfg.num_queries = c.num_queries;
    qcfg.avg_size = 4.0;
    qcfg.selectivity = 0.25;
    qcfg.overlap = 0.65;
    qcfg.seed = c.seed * 131 + 5;
    workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

    for (EngineKind kind : kViewKinds) {
      ExpectSharedAgrees(kind, qs.queries, w.stream.updates(), c.window,
                         c.threads, {}, std::string("overlap-") + c.dataset);
    }
  }
}

TEST(SharedFinalizeAgreement, HighOverlapWithMidStreamRemovals) {
  // The lifecycle interaction: removing group members (and non-members)
  // mid-stream must invalidate the signature cache — a stale group serving a
  // removed query, or a survivor missing its fan-out, would show up as a
  // per-update diff against sequential execution.
  workload::SnbConfig config;
  config.num_updates = 300;
  config.seed = 23;
  config.num_places = 8;
  config.num_tags = 8;
  workload::Workload w = workload::GenerateSnb(config);

  workload::QueryGenConfig qcfg;
  qcfg.num_queries = 36;
  qcfg.avg_size = 4.0;
  qcfg.selectivity = 0.25;
  qcfg.overlap = 0.65;
  qcfg.seed = 1009;
  workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

  // Remove a third of the query set in two waves between windows.
  std::map<size_t, std::vector<QueryId>> removals;
  for (QueryId q = 0; q < 6; ++q) removals[96].push_back(q * 3);
  for (QueryId q = 0; q < 6; ++q) removals[192].push_back(q * 3 + 1);

  for (EngineKind kind : kViewKinds) {
    ExpectSharedAgrees(kind, qs.queries, w.stream.updates(), /*window=*/32,
                       /*threads=*/1, removals, "churned-overlap");
    ExpectSharedAgrees(kind, qs.queries, w.stream.updates(), /*window=*/24,
                       /*threads=*/3, removals, "churned-overlap-threads");
  }
}

TEST(SharedFinalizeAgreement, ParallelSignatureBuildMatchesSingleThread) {
  // EnsureFinalizeGroups fans the signature *encode* loop over the batch
  // pool once the rebuild covers >= 64 queries (view_engine_base.cc's
  // kParallelSignatureMin); the grouping itself stays sequential, so a
  // threaded build must produce exactly the single-threaded build's groups
  // — same group count, same pass collapse, same per-update results.
  workload::SnbConfig config;
  config.num_updates = 240;
  config.seed = 29;
  config.num_places = 8;
  config.num_tags = 8;
  workload::Workload w = workload::GenerateSnb(config);

  workload::QueryGenConfig qcfg;
  qcfg.num_queries = 96;  // Above the parallel-encode threshold.
  qcfg.avg_size = 4.0;
  qcfg.selectivity = 0.25;
  qcfg.overlap = 0.65;
  qcfg.seed = 2027;
  workload::QuerySet qs = workload::GenerateQueries(w, qcfg);

  for (EngineKind kind : kViewKinds) {
    // Full three-way agreement (threaded shared vs unshared vs sequential).
    ExpectSharedAgrees(kind, qs.queries, w.stream.updates(), /*window=*/32,
                       /*threads=*/4, {}, "parallel-signatures");

    // Grouping determinism: the pool-parallel build lands on the identical
    // group structure and pass counts as the single-threaded build.
    auto threaded = CreateEngine(kind);
    auto single = CreateEngine(kind);
    for (QueryId qid = 0; qid < qs.queries.size(); ++qid) {
      threaded->AddQuery(qid, qs.queries[qid]);
      single->AddQuery(qid, qs.queries[qid]);
    }
    threaded->SetBatchThreads(4);
    const auto& updates = w.stream.updates();
    constexpr size_t kWindow = 32;
    for (size_t pos = 0; pos < updates.size(); pos += kWindow) {
      const size_t n = std::min(kWindow, updates.size() - pos);
      threaded->ApplyBatch(&updates[pos], n);
      single->ApplyBatch(&updates[pos], n);
    }
    EXPECT_EQ(threaded->shared_finalize_groups(), single->shared_finalize_groups())
        << threaded->name();
    EXPECT_EQ(threaded->final_join_passes(), single->final_join_passes())
        << threaded->name();
    EXPECT_EQ(threaded->StateFingerprint(), single->StateFingerprint())
        << threaded->name();
  }
}

}  // namespace
}  // namespace gstream
