#include <gtest/gtest.h>

#include "engine/engine.h"
#include "query/parser.h"
#include "tric/tric_engine.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace {

using tric::TricEngine;

/// The ablation variants must stay *correct* — they only trade performance.
/// Every variant is compared against the naive oracle on a randomized
/// SNB stream.
class TricAblationTest : public ::testing::TestWithParam<TricEngine::Options> {};

TEST_P(TricAblationTest, AgreesWithOracle) {
  workload::SnbConfig sc;
  sc.num_updates = 350;
  sc.num_places = 10;
  sc.num_tags = 10;
  workload::Workload w = workload::GenerateSnb(sc);
  workload::QueryGenConfig qc;
  qc.num_queries = 30;
  qc.selectivity = 0.4;
  qc.seed = 77;
  workload::QuerySet qs = workload::GenerateQueries(w, qc);

  auto oracle = CreateEngine(EngineKind::kNaive);
  TricEngine engine(GetParam());
  for (QueryId qid = 0; qid < qs.queries.size(); ++qid) {
    oracle->AddQuery(qid, qs.queries[qid]);
    engine.AddQuery(qid, qs.queries[qid]);
  }
  for (size_t i = 0; i < w.stream.size(); ++i) {
    UpdateResult expected = oracle->ApplyUpdate(w.stream[i]);
    UpdateResult got = engine.ApplyUpdate(w.stream[i]);
    ASSERT_EQ(got.per_query, expected.per_query)
        << engine.name() << " at update " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TricAblationTest,
    ::testing::Values(TricEngine::Options{false, false, false},   // no clustering
                      TricEngine::Options{true, false, false},    // cached, no clustering
                      TricEngine::Options{false, true, true},     // per-edge paths
                      TricEngine::Options{true, true, true},      // cached per-edge
                      TricEngine::Options{false, false, true}),   // both ablations
    [](const ::testing::TestParamInfo<TricEngine::Options>& info) {
      std::string name = info.param.cache ? "Cached" : "Plain";
      name += info.param.clustering ? "Clustered" : "NoCluster";
      name += info.param.per_edge_paths ? "PerEdge" : "CoverPaths";
      return name;
    });

TEST(TricAblationStructure, NoClusteringCreatesPrivateNodes) {
  StringInterner in;
  TricEngine clustered(TricEngine::Options{false, true, false});
  TricEngine unclustered(TricEngine::Options{false, false, false});
  for (QueryId q = 0; q < 10; ++q) {
    auto r = ParsePattern("(?x)-[knows]->(?y); (?y)-[posted]->(?p)", in);
    clustered.AddQuery(q, r.pattern);
    unclustered.AddQuery(q, r.pattern);
  }
  // Ten identical 2-edge chains: clustered = 2 nodes, unclustered = 20.
  EXPECT_EQ(clustered.forest().NumNodes(), 2u);
  EXPECT_EQ(unclustered.forest().NumNodes(), 20u);
}

TEST(TricAblationStructure, PerEdgePathsIndexEveryEdgeSeparately) {
  StringInterner in;
  TricEngine per_edge(TricEngine::Options{false, true, true});
  auto r = ParsePattern("(?a)-[x]->(?b); (?b)-[y]->(?c); (?c)-[z]->(?d)", in);
  per_edge.AddQuery(1, r.pattern);
  // Three single-edge paths => three root nodes, no depth.
  EXPECT_EQ(per_edge.forest().NumTries(), 3u);
  EXPECT_EQ(per_edge.forest().NumNodes(), 3u);
}

}  // namespace
}  // namespace gstream
