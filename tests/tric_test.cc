#include <gtest/gtest.h>

#include "common/interning.h"
#include "query/parser.h"
#include "tric/tric_engine.h"
#include "tric/trie.h"

namespace gstream {
namespace {

using tric::TricEngine;
using tric::TrieForest;
using tric::TrieNode;

QueryPattern Parse(const std::string& text, StringInterner& in) {
  auto r = ParsePattern(text, in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.pattern;
}

TEST(TrieForest, InsertPathCreatesChain) {
  TrieForest forest;
  GenericEdgePattern a{kNoVertex, 1, kNoVertex};
  GenericEdgePattern b{kNoVertex, 2, 7};
  int created = 0;
  auto init = [&](TrieNode* n) {
    n->view = std::make_unique<Relation>(n->depth + 2);
    ++created;
  };
  TrieNode* t = forest.InsertPath({a, b}, init);
  EXPECT_EQ(created, 2);
  EXPECT_EQ(forest.NumTries(), 1u);
  EXPECT_EQ(forest.NumNodes(), 2u);
  EXPECT_EQ(t->depth, 1u);
  ASSERT_NE(t->parent, nullptr);
  EXPECT_TRUE(t->parent->pattern == a);
}

TEST(TrieForest, SharedPrefixReusesNodes) {
  TrieForest forest;
  GenericEdgePattern a{kNoVertex, 1, kNoVertex};
  GenericEdgePattern b{kNoVertex, 2, 7};
  GenericEdgePattern c{kNoVertex, 2, 8};
  auto init = [](TrieNode* n) { n->view = std::make_unique<Relation>(n->depth + 2); };
  TrieNode* t1 = forest.InsertPath({a, b}, init);
  TrieNode* t2 = forest.InsertPath({a, c}, init);
  EXPECT_EQ(forest.NumTries(), 1u);
  EXPECT_EQ(forest.NumNodes(), 3u);  // shared root + two children
  EXPECT_EQ(t1->parent, t2->parent);
}

TEST(TrieForest, IdenticalPathsShareTerminal) {
  TrieForest forest;
  GenericEdgePattern a{kNoVertex, 1, kNoVertex};
  auto init = [](TrieNode* n) { n->view = std::make_unique<Relation>(n->depth + 2); };
  TrieNode* t1 = forest.InsertPath({a}, init);
  TrieNode* t2 = forest.InsertPath({a}, init);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(forest.NumNodes(), 1u);
}

TEST(TrieForest, NodeIndexFindsAllOccurrences) {
  TrieForest forest;
  GenericEdgePattern a{kNoVertex, 1, kNoVertex};
  auto init = [](TrieNode* n) { n->view = std::make_unique<Relation>(n->depth + 2); };
  forest.InsertPath({a, a, a}, init);  // chain of the same pattern
  const auto* nodes = forest.NodesFor(a);
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->size(), 3u);
  EXPECT_EQ(forest.NodesFor(GenericEdgePattern{0, 9, 0}), nullptr);
}

/// Paper Example 4.5 / Fig. 6: indexing Q1..Q4's covering paths must cluster
/// the hasMod-rooted paths into one trie.
TEST(TricEngine, PaperFig6Clustering) {
  StringInterner in;
  TricEngine engine(false);
  engine.AddQuery(1, Parse("(?f)-[hasMod]->(?p); (?p)-[posted]->(pst1);"
                           "(?p)-[posted]->(pst2); (?c)-[reply]->(pst2)",
                           in));
  engine.AddQuery(2, Parse("(?f)-[hasMod]->(?p)", in));
  engine.AddQuery(3, Parse("(com1)-[hasCreator]->(?v); (?v)-[posted]->(pst1);"
                           "(pst1)-[containedIn]->(?w)",
                           in));
  engine.AddQuery(4, Parse("(?f)-[hasMod]->(?p); (?p)-[posted]->(pst1);"
                           "(pst1)-[containedIn]->(?w)",
                           in));

  // Tries: T1 rooted at hasMod(?,?), T2 at reply(?,pst2), T3 at
  // hasCreator(com1,?) — exactly as in Fig. 6.
  EXPECT_EQ(engine.forest().NumTries(), 3u);

  // The hasMod trie clusters: root(shared by Q1 P1/P2, Q2, Q4) + posted->pst1
  // (shared by Q1 P1 and Q4) + posted->pst2 + containedIn under pst1.
  GenericEdgePattern has_mod{kNoVertex, in.Intern("hasMod"), kNoVertex};
  const auto* roots = engine.forest().NodesFor(has_mod);
  ASSERT_NE(roots, nullptr);
  ASSERT_EQ(roots->size(), 1u);
  const TrieNode* root = (*roots)[0];
  EXPECT_EQ(root->children.size(), 2u);  // posted->pst1, posted->pst2
  // Q2's single-edge path terminates at the shared root.
  ASSERT_EQ(root->paths.size(), 1u);
  EXPECT_EQ(root->paths[0].qid, 2u);
}

TEST(TricEngine, SharedPatternViewsAcrossQueries) {
  StringInterner in;
  TricEngine engine(false);
  // Ten structurally identical queries: the trie must hold ONE node.
  for (QueryId q = 0; q < 10; ++q)
    engine.AddQuery(q, Parse("(?x)-[knows]->(?y)", in));
  EXPECT_EQ(engine.forest().NumNodes(), 1u);

  auto res = engine.ApplyUpdate(
      {in.Intern("a"), in.Intern("knows"), in.Intern("b"), UpdateOp::kAdd});
  EXPECT_EQ(res.triggered.size(), 10u);
  EXPECT_EQ(res.new_embeddings, 10u);
}

TEST(TricEngine, PruningStopsAtEmptyAncestor) {
  StringInterner in;
  TricEngine engine(false);
  engine.AddQuery(1, Parse("(com1)-[hasCreator]->(?v); (?v)-[posted]->(pst1)", in));
  // posted arrives but the root (hasCreator from com1) has an empty view:
  // the sub-trie must yield nothing (Example 4.6, trie T3).
  auto res = engine.ApplyUpdate(
      {in.Intern("p2"), in.Intern("posted"), in.Intern("pst1"), UpdateOp::kAdd});
  EXPECT_TRUE(res.triggered.empty());

  // Once the root fills, the chain completes.
  engine.ApplyUpdate(
      {in.Intern("com1"), in.Intern("hasCreator"), in.Intern("p2"), UpdateOp::kAdd});
  auto res2 = engine.ApplyUpdate(
      {in.Intern("p2"), in.Intern("posted"), in.Intern("pst2"), UpdateOp::kAdd});
  EXPECT_TRUE(res2.triggered.empty());  // wrong literal
  auto res3 = engine.ApplyUpdate(
      {in.Intern("com1"), in.Intern("hasCreator"), in.Intern("p3"), UpdateOp::kAdd});
  EXPECT_TRUE(res3.triggered.empty());
  auto res4 = engine.ApplyUpdate(
      {in.Intern("p3"), in.Intern("posted"), in.Intern("pst1"), UpdateOp::kAdd});
  ASSERT_EQ(res4.triggered.size(), 1u);
}

TEST(TricEngine, RepeatedPatternChainIsExact) {
  StringInterner in;
  // knows^3 chain; updates arriving in an order that hits several trie
  // levels at once (the multi-matching-node case the paper's Fig. 8
  // pseudocode glosses over).
  TricEngine engine(false);
  engine.AddQuery(1, Parse("(?a)-[knows]->(?b); (?b)-[knows]->(?c); (?c)-[knows]->(?d)",
                           in));
  LabelId k = in.Intern("knows");
  auto apply = [&](const char* s, const char* t) {
    return engine.ApplyUpdate({in.Intern(s), k, in.Intern(t), UpdateOp::kAdd});
  };
  apply("v1", "v2");
  apply("v3", "v4");
  // v2->v3 completes v1..v4 in one shot: the update matches trie depth 0, 1
  // and 2 simultaneously.
  auto res = apply("v2", "v3");
  ASSERT_EQ(res.triggered.size(), 1u);
  EXPECT_EQ(res.new_embeddings, 1u);
}

TEST(TricEngine, SelfLoopUpdateOnRepeatedChain) {
  StringInterner in;
  TricEngine engine(false);
  engine.AddQuery(1, Parse("(?a)-[r]->(?b); (?b)-[r]->(?c)", in));
  LabelId r = in.Intern("r");
  auto res = engine.ApplyUpdate({in.Intern("x"), r, in.Intern("x"), UpdateOp::kAdd});
  // x->x; x->x gives the single homomorphism (x,x,x).
  ASSERT_EQ(res.triggered.size(), 1u);
  EXPECT_EQ(res.new_embeddings, 1u);
}

TEST(TricEngine, CachedAndUncachedAgree) {
  StringInterner in1, in2;
  TricEngine plain(false), cached(true);
  const char* queries[] = {
      "(?f)-[hasMod]->(?p); (?p)-[posted]->(?q)",
      "(?x)-[knows]->(?y); (?y)-[knows]->(?x)",
      "(?x)-[posted]->(pst1)",
  };
  for (QueryId q = 0; q < 3; ++q) {
    plain.AddQuery(q, Parse(queries[q], in1));
    cached.AddQuery(q, Parse(queries[q], in2));
  }
  const char* edges[][3] = {
      {"f1", "hasMod", "p1"}, {"p1", "posted", "pst1"}, {"a", "knows", "b"},
      {"b", "knows", "a"},    {"p1", "posted", "pst2"}, {"f2", "hasMod", "p1"},
  };
  for (const auto& [s, l, t] : edges) {
    auto r1 = plain.ApplyUpdate(
        {in1.Intern(s), in1.Intern(l), in1.Intern(t), UpdateOp::kAdd});
    auto r2 = cached.ApplyUpdate(
        {in2.Intern(s), in2.Intern(l), in2.Intern(t), UpdateOp::kAdd});
    ASSERT_EQ(r1.per_query, r2.per_query);
  }
}

TEST(TricEngine, MidStreamQueryBackfillsFromSharedViews) {
  StringInterner in;
  TricEngine engine(false);
  engine.AddQuery(1, Parse("(?x)-[r]->(?y)", in));
  engine.ApplyUpdate({in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kAdd});

  // A new query over the same pattern joins the existing trie node and sees
  // its materialized state: the next matching update triggers it.
  engine.AddQuery(2, Parse("(?x)-[r]->(?y); (?y)-[s]->(?z)", in));
  auto res = engine.ApplyUpdate(
      {in.Intern("b"), in.Intern("s"), in.Intern("c"), UpdateOp::kAdd});
  ASSERT_EQ(res.triggered.size(), 1u);
  EXPECT_EQ(res.triggered[0], 2u);
}

TEST(TricEngine, MemoryAccountsTrieAndCache) {
  StringInterner in;
  TricEngine plain(false), cached(true);
  for (QueryId q = 0; q < 5; ++q) {
    plain.AddQuery(q, Parse("(?x)-[r" + std::to_string(q) + "]->(?y)", in));
    cached.AddQuery(q, Parse("(?x)-[r" + std::to_string(q) + "]->(?y)", in));
  }
  for (uint32_t i = 0; i < 50; ++i) {
    EdgeUpdate u{i, in.Intern("r" + std::to_string(i % 5)), i + 1, UpdateOp::kAdd};
    plain.ApplyUpdate(u);
    cached.ApplyUpdate(u);
  }
  // The cached engine retains hash indexes on top of the same views.
  EXPECT_GT(cached.MemoryBytes(), plain.MemoryBytes());
}

TEST(TricEngine, TriggersOnlyQueriesWhoseDeltaReachesTerminal) {
  StringInterner in;
  TricEngine engine(false);
  engine.AddQuery(1, Parse("(?x)-[r]->(?y); (?y)-[s]->(?z)", in));
  engine.AddQuery(2, Parse("(?x)-[r]->(?y); (?y)-[t]->(?z)", in));
  engine.ApplyUpdate({in.Intern("a"), in.Intern("r"), in.Intern("b"), UpdateOp::kAdd});
  engine.ApplyUpdate({in.Intern("b"), in.Intern("s"), in.Intern("c"), UpdateOp::kAdd});
  // Another r edge extends both prefixes, but only query 1 has a complete
  // suffix; query 2's branch dies in the trie (empty containedIn-like view).
  auto res = engine.ApplyUpdate(
      {in.Intern("a2"), in.Intern("r"), in.Intern("b"), UpdateOp::kAdd});
  ASSERT_EQ(res.triggered.size(), 1u);
  EXPECT_EQ(res.triggered[0], 1u);
}

}  // namespace
}  // namespace gstream
