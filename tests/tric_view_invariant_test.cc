#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "graphdb/executor.h"
#include "graphdb/store.h"
#include "query/parser.h"
#include "tric/tric_engine.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace {

using tric::TricEngine;
using tric::TrieNode;

/// Builds the chain QueryPattern spelled by a root-to-node trie signature:
/// consecutive edges join target->source; literal endpoints become literal
/// vertices, variable endpoints fresh variables (genericized semantics: no
/// repeated-variable constraints).
QueryPattern ChainOfSignature(const std::vector<GenericEdgePattern>& sig) {
  QueryPattern q;
  uint32_t prev = UINT32_MAX;
  for (size_t i = 0; i < sig.size(); ++i) {
    uint32_t s = i == 0 ? (sig[i].src_is_var() ? q.AddVariable()
                                               : q.AddLiteral(sig[i].src))
                        : prev;
    uint32_t t = sig[i].dst_is_var() ? q.AddVariable() : q.AddLiteral(sig[i].dst);
    q.AddEdge(s, sig[i].label, t);
    prev = t;
  }
  return q;
}

/// THE load-bearing invariant of TRIC's answering phase: after any stream,
/// every trie node's materialized view must equal the set of embeddings of
/// its root-to-node path signature in the full graph — i.e. incremental
/// delta propagation computes exactly what a from-scratch evaluation would.
/// Verified with the independent backtracking executor.
TEST(TricViewInvariant, ViewsEqualFromScratchEvaluation) {
  workload::SnbConfig sc;
  sc.num_updates = 500;
  sc.num_places = 10;
  sc.num_tags = 10;
  workload::Workload w = workload::GenerateSnb(sc);
  workload::QueryGenConfig qc;
  qc.num_queries = 40;
  qc.selectivity = 0.4;
  qc.seed = 101;
  workload::QuerySet qs = workload::GenerateQueries(w, qc);

  for (bool cached : {false, true}) {
    TricEngine engine(cached);
    for (QueryId qid = 0; qid < qs.queries.size(); ++qid)
      engine.AddQuery(qid, qs.queries[qid]);

    graphdb::GraphStore store;
    for (const auto& u : w.stream.updates()) {
      engine.ApplyUpdate(u);
      store.AddEdge(u.src, u.label, u.dst);
    }
    graphdb::MatchExecutor exec(&store);

    size_t checked = 0;
    engine.forest().ForEachNode([&](const TrieNode& node) {
      // Reconstruct the signature root -> node.
      std::vector<GenericEdgePattern> sig;
      for (const TrieNode* n = &node; n != nullptr; n = n->parent)
        sig.insert(sig.begin(), n->pattern);

      QueryPattern chain = ChainOfSignature(sig);
      std::set<std::vector<VertexId>> expected;
      exec.Enumerate(chain, graphdb::PlanQuery(chain),
                     [&](const std::vector<VertexId>& assignment) {
                       // Chain vertex order == view column order by
                       // construction of ChainOfSignature.
                       expected.insert(assignment);
                       return true;
                     });

      std::set<std::vector<VertexId>> actual;
      const Relation& view = *node.view;
      for (size_t r = 0; r < view.NumRows(); ++r)
        actual.insert(
            std::vector<VertexId>(view.Row(r), view.Row(r) + view.arity()));

      ASSERT_EQ(actual, expected)
          << "trie node depth " << node.depth << " diverged (cached=" << cached
          << ", " << expected.size() << " expected rows)";
      ++checked;
    });
    // The query set must have produced a real forest.
    EXPECT_GT(checked, 50u);
  }
}

/// Same invariant under adversarial repeated-label chains (every update
/// matches several depths of the same trie at once).
TEST(TricViewInvariant, RepeatedLabelTrieStaysExact) {
  StringInterner in;
  TricEngine engine(false);
  auto parse = [&](const char* p) {
    auto r = ParsePattern(p, in);
    EXPECT_TRUE(r.ok);
    return r.pattern;
  };
  engine.AddQuery(0, parse("(?a)-[r]->(?b); (?b)-[r]->(?c); (?c)-[r]->(?d)"));
  engine.AddQuery(1, parse("(?a)-[r]->(?b); (?b)-[r]->(?c)"));
  engine.AddQuery(2, parse("(?a)-[r]->(?b)"));

  graphdb::GraphStore store;
  LabelId r = in.Intern("r");
  Rng rng(5);
  std::vector<EdgeUpdate> updates;
  for (uint32_t s = 0; s < 7; ++s)
    for (uint32_t t = 0; t < 7; ++t)
      updates.push_back({in.Intern("n" + std::to_string(s)), r,
                         in.Intern("n" + std::to_string(t)), UpdateOp::kAdd});
  std::shuffle(updates.begin(), updates.end(), rng.engine());
  for (const auto& u : updates) {
    engine.ApplyUpdate(u);
    store.AddEdge(u.src, u.label, u.dst);
  }

  graphdb::MatchExecutor exec(&store);
  engine.forest().ForEachNode([&](const TrieNode& node) {
    std::vector<GenericEdgePattern> sig;
    for (const TrieNode* n = &node; n != nullptr; n = n->parent)
      sig.insert(sig.begin(), n->pattern);
    QueryPattern chain = ChainOfSignature(sig);
    uint64_t expected = exec.CountMatches(chain, graphdb::PlanQuery(chain));
    ASSERT_EQ(node.view->NumRows(), expected) << "depth " << node.depth;
  });
}

}  // namespace
}  // namespace gstream
