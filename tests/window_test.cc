#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/interning.h"
#include "ingest/crc32c.h"
#include "ingest/gsb_format.h"
#include "ingest/gsb_reader.h"
#include "ingest/gsb_writer.h"
#include "ingest/snapshot.h"
#include "time/window.h"

namespace gstream {
namespace temporal {
namespace {

/// Unit suite for the temporal subsystem's building blocks: the
/// WindowManager policies (time / count / label-TTL), the config validator,
/// and the timestamped `.gsb` v2 + snapshot v2 encodings with their v1
/// back-compat guarantees.

EdgeUpdate Edge(uint32_t src, uint32_t label, uint32_t dst, uint64_t ts,
                UpdateOp op = UpdateOp::kAdd) {
  EdgeUpdate u;
  u.src = src;
  u.label = label;
  u.dst = dst;
  u.ts = ts;
  u.op = op;
  return u;
}

/// Feeds `u` through `wm` and returns the expiry deletions it emitted.
std::vector<EdgeUpdate> Feed(WindowManager& wm, const EdgeUpdate& u) {
  std::vector<EdgeUpdate> out;
  wm.Advance(u, out);
  return out;
}

void ExpectInvariant(const WindowManager& wm) {
  EXPECT_EQ(wm.ingested_edges(),
            wm.live_edges() + wm.expired_edges() + wm.removed_edges());
}

TEST(WindowConfigTest, ValidateRejectsBadShapes) {
  WindowConfig ok;
  EXPECT_EQ(ValidateWindowConfig(ok), "");  // disabled default is valid

  WindowConfig no_width;
  no_width.policy = WindowPolicy::kTime;
  EXPECT_NE(ValidateWindowConfig(no_width), "");

  WindowConfig stray_ttls;
  stray_ttls.label_ttls.push_back({0, 5});
  EXPECT_NE(ValidateWindowConfig(stray_ttls), "");

  WindowConfig ttls_on_time;
  ttls_on_time.policy = WindowPolicy::kTime;
  ttls_on_time.width = 10;
  ttls_on_time.label_ttls.push_back({0, 5});
  EXPECT_NE(ValidateWindowConfig(ttls_on_time), "");

  WindowConfig zero_ttl;
  zero_ttl.policy = WindowPolicy::kLabelTtl;
  zero_ttl.width = 10;
  zero_ttl.label_ttls.push_back({0, 0});
  EXPECT_NE(ValidateWindowConfig(zero_ttl), "");

  WindowConfig label_ttl;
  label_ttl.policy = WindowPolicy::kLabelTtl;
  label_ttl.width = 10;
  label_ttl.label_ttls.push_back({0, 5});
  EXPECT_EQ(ValidateWindowConfig(label_ttl), "");
}

TEST(WindowConfigTest, ParsePolicyNamesRoundTrip) {
  for (WindowPolicy p : {WindowPolicy::kNone, WindowPolicy::kTime,
                         WindowPolicy::kCount, WindowPolicy::kLabelTtl}) {
    WindowPolicy parsed = WindowPolicy::kNone;
    ASSERT_TRUE(ParseWindowPolicy(WindowPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  WindowPolicy out;
  EXPECT_FALSE(ParseWindowPolicy("bogus", &out));
}

TEST(WindowManagerTest, DisabledPolicyIsPassThrough) {
  WindowManager wm(WindowConfig{});
  EXPECT_TRUE(Feed(wm, Edge(1, 0, 2, 100)).empty());
  EXPECT_EQ(wm.ingested_edges(), 0u);
  EXPECT_EQ(wm.live_edges(), 0u);
}

TEST(WindowManagerTest, TimeWindowExpiresAtWatermark) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kTime;
  cfg.width = 10;
  WindowManager wm(cfg);

  EXPECT_TRUE(Feed(wm, Edge(1, 0, 2, 0)).empty());
  EXPECT_TRUE(Feed(wm, Edge(2, 0, 3, 5)).empty());
  EXPECT_EQ(wm.live_edges(), 2u);

  // Watermark 10 reaches edge@0's expiry (0 + 10); edge@5 survives.
  std::vector<EdgeUpdate> dels = Feed(wm, Edge(3, 0, 4, 10));
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(dels[0].src, 1u);
  EXPECT_EQ(dels[0].op, UpdateOp::kDelete);
  EXPECT_EQ(dels[0].ts, 10u);  // the event time it left the window
  EXPECT_EQ(wm.live_edges(), 2u);
  EXPECT_EQ(wm.expired_edges(), 1u);
  EXPECT_EQ(wm.expiry_batches(), 1u);
  ExpectInvariant(wm);

  // A far jump expires everything still live, oldest first.
  dels = Feed(wm, Edge(4, 0, 5, 1000));
  ASSERT_EQ(dels.size(), 2u);
  EXPECT_EQ(dels[0].src, 2u);
  EXPECT_EQ(dels[1].src, 3u);
  EXPECT_EQ(wm.expiry_batches(), 2u);
  ExpectInvariant(wm);
}

TEST(WindowManagerTest, WatermarkIsMonotonicUnderStragglers) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kTime;
  cfg.width = 10;
  WindowManager wm(cfg);

  Feed(wm, Edge(1, 0, 2, 100));
  // A straggler with an old timestamp neither rewinds the watermark nor
  // gets grandfathered: its expiry (5 + 10 < 100) is already due at the
  // *next* advance.
  EXPECT_TRUE(Feed(wm, Edge(2, 0, 3, 5)).empty());
  EXPECT_EQ(wm.watermark(), 100u);
  std::vector<EdgeUpdate> dels = Feed(wm, Edge(3, 0, 4, 101));
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(dels[0].src, 2u);
  ExpectInvariant(wm);
}

TEST(WindowManagerTest, ReAddRefreshesTheHorizon) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kTime;
  cfg.width = 10;
  WindowManager wm(cfg);

  Feed(wm, Edge(1, 0, 2, 0));
  // Same edge key re-added later: one live edge, horizon moves to 5 + 10.
  EXPECT_TRUE(Feed(wm, Edge(1, 0, 2, 5)).empty());
  EXPECT_EQ(wm.live_edges(), 1u);
  EXPECT_EQ(wm.ingested_edges(), 1u);

  // Watermark 12 passes the original expiry (10) but not the refreshed one.
  EXPECT_TRUE(Feed(wm, Edge(5, 0, 6, 12)).empty());
  std::vector<EdgeUpdate> dels = Feed(wm, Edge(6, 0, 7, 15));
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(dels[0].src, 1u);
  ExpectInvariant(wm);
}

TEST(WindowManagerTest, ExplicitDeleteRetiresWithoutExpiry) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kTime;
  cfg.width = 10;
  WindowManager wm(cfg);

  Feed(wm, Edge(1, 0, 2, 0));
  Feed(wm, Edge(1, 0, 2, 3, UpdateOp::kDelete));
  EXPECT_EQ(wm.live_edges(), 0u);
  EXPECT_EQ(wm.removed_edges(), 1u);
  // Its stale heap entry must not surface as a duplicate delete later.
  EXPECT_TRUE(Feed(wm, Edge(3, 0, 4, 1000)).empty());
  EXPECT_EQ(wm.expired_edges(), 0u);
  ExpectInvariant(wm);
}

TEST(WindowManagerTest, CountWindowEvictsFifo) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kCount;
  cfg.width = 2;
  WindowManager wm(cfg);

  EXPECT_TRUE(Feed(wm, Edge(1, 0, 2, 0)).empty());
  EXPECT_TRUE(Feed(wm, Edge(2, 0, 3, 0)).empty());
  std::vector<EdgeUpdate> dels = Feed(wm, Edge(3, 0, 4, 0));
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(dels[0].src, 1u);  // oldest out
  EXPECT_EQ(wm.live_edges(), 2u);

  // Re-adding a live edge refreshes its position instead of evicting.
  EXPECT_TRUE(Feed(wm, Edge(2, 0, 3, 0)).empty());
  dels = Feed(wm, Edge(4, 0, 5, 0));
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(dels[0].src, 3u);  // 3 is now older than the refreshed 2
  ExpectInvariant(wm);
}

TEST(WindowManagerTest, LabelTtlUsesOverridesAndDefault) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kLabelTtl;
  cfg.width = 100;                  // default TTL
  cfg.label_ttls.push_back({7, 5});  // label 7 expires fast
  WindowManager wm(cfg);

  Feed(wm, Edge(1, 7, 2, 0));
  Feed(wm, Edge(3, 9, 4, 0));
  std::vector<EdgeUpdate> dels = Feed(wm, Edge(5, 9, 6, 50));
  ASSERT_EQ(dels.size(), 1u);
  EXPECT_EQ(dels[0].label, 7u);
  dels = Feed(wm, Edge(7, 9, 8, 200));
  EXPECT_EQ(dels.size(), 2u);
  ExpectInvariant(wm);
}

// ---- `.gsb` v2: the optional per-record timestamp column ----

std::vector<EdgeUpdate> SampleStream(bool timestamped) {
  std::vector<EdgeUpdate> updates;
  for (uint32_t i = 0; i < 50; ++i) {
    EdgeUpdate u = Edge(i % 7, i % 3, (i + 1) % 7, timestamped ? 1000 + i : 0,
                        i % 11 == 10 ? UpdateOp::kDelete : UpdateOp::kAdd);
    updates.push_back(u);
  }
  return updates;
}

StringInterner SampleDict() {
  StringInterner interner;
  for (const char* s : {"a", "b", "c", "d", "e", "f", "g"}) interner.Intern(s);
  return interner;
}

TEST(GsbTimestampTest, TimestampedRoundTripPreservesTs) {
  StringInterner interner = SampleDict();
  const std::vector<EdgeUpdate> updates = SampleStream(/*timestamped=*/true);
  ingest::GsbWriterOptions wopts;
  wopts.records_per_block = 16;  // multiple kRecordsTs blocks
  const std::vector<uint8_t> image = ingest::EncodeGsb(interner, updates, wopts);

  ingest::MemorySource src(image);
  ingest::GsbReader reader(src);
  ASSERT_TRUE(reader.Open()) << reader.error();
  EXPECT_EQ(reader.header().version, ingest::kGsbVersionTs);
  EXPECT_NE(reader.header().flags & ingest::kGsbFlagTimestamps, 0u);

  std::vector<ingest::GsbBlockRef> blocks;
  ASSERT_TRUE(reader.ScanBlocks(ingest::CorruptPolicy::kFail, blocks));
  std::vector<EdgeUpdate> decoded;
  for (const ingest::GsbBlockRef& b : blocks) {
    if (b.kind != ingest::GsbBlockKind::kRecordsTs) continue;
    std::string reason;
    ASSERT_EQ(reader.DecodeRecords(b, decoded, &reason),
              ingest::DecodeStatus::kOk)
        << reason;
  }
  ASSERT_EQ(decoded.size(), updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(decoded[i].ts, updates[i].ts) << i;
    EXPECT_EQ(decoded[i].src, updates[i].src) << i;
    EXPECT_EQ(decoded[i].op, updates[i].op) << i;
  }
}

TEST(GsbTimestampTest, UntimestampedStreamStaysByteIdenticalV1) {
  // An all-zero timestamp column must not change the file format at all:
  // v2 is strictly opt-in, so untouched producers keep bit-stable outputs.
  StringInterner interner = SampleDict();
  const std::vector<EdgeUpdate> updates = SampleStream(/*timestamped=*/false);
  const std::vector<uint8_t> image = ingest::EncodeGsb(interner, updates, {});

  ingest::MemorySource src(image);
  ingest::GsbReader reader(src);
  ASSERT_TRUE(reader.Open()) << reader.error();
  EXPECT_EQ(reader.header().version, ingest::kGsbVersion);
  EXPECT_EQ(reader.header().flags & ingest::kGsbFlagTimestamps, 0u);

  std::vector<ingest::GsbBlockRef> blocks;
  ASSERT_TRUE(reader.ScanBlocks(ingest::CorruptPolicy::kFail, blocks));
  for (const ingest::GsbBlockRef& b : blocks)
    EXPECT_NE(b.kind, ingest::GsbBlockKind::kRecordsTs);
}

// ---- snapshot v2: the temporal-horizon counters ----

ingest::SnapshotData SampleSnapshot() {
  ingest::SnapshotData snap;
  snap.stream.header_crc = 0xabcd1234;
  snap.stream.dict_count = 7;
  snap.stream.record_count = 50;
  snap.engine_name = "tric+";
  snap.record_offset = 25;
  snap.windows_finalized = 5;
  snap.updates_applied = 31;
  snap.new_embeddings = 12;
  snap.fingerprint = 0xfeedface;
  snap.satisfied = {3, 1};
  snap.ingested_edges = 25;
  snap.expired_edges = 6;
  snap.removed_edges = 2;
  snap.expiry_batches = 4;
  snap.live_edges = 17;
  snap.watermark = 1024;
  return snap;
}

TEST(SnapshotTemporalTest, V2RoundTripCarriesTheHorizon) {
  const ingest::SnapshotData snap = SampleSnapshot();
  const std::vector<uint8_t> image = ingest::EncodeSnapshot(snap);

  ingest::SnapshotData decoded;
  std::string err;
  ASSERT_TRUE(ingest::DecodeSnapshot(image.data(), image.size(), decoded, &err))
      << err;
  EXPECT_EQ(decoded.ingested_edges, snap.ingested_edges);
  EXPECT_EQ(decoded.expired_edges, snap.expired_edges);
  EXPECT_EQ(decoded.removed_edges, snap.removed_edges);
  EXPECT_EQ(decoded.expiry_batches, snap.expiry_batches);
  EXPECT_EQ(decoded.live_edges, snap.live_edges);
  EXPECT_EQ(decoded.watermark, snap.watermark);
  EXPECT_EQ(decoded.record_offset, snap.record_offset);
  EXPECT_EQ(decoded.fingerprint, snap.fingerprint);
}

TEST(SnapshotTemporalTest, V1ImagesStillDecodeWithZeroHorizon) {
  // Reconstruct the v1 layout from a v2 image: strip the trailing 48-byte
  // horizon, stamp version 1, and re-derive length + CRC. A pre-upgrade
  // snapshot must keep decoding (recovery across the version bump).
  std::vector<uint8_t> image = ingest::EncodeSnapshot(SampleSnapshot());
  constexpr size_t kHeader = 16, kHorizon = 48;
  ASSERT_GT(image.size(), kHeader + kHorizon);
  image.resize(image.size() - kHorizon);
  const uint32_t payload_len = static_cast<uint32_t>(image.size() - kHeader);
  image[4] = 1;  // version (little-endian u32; high bytes already 0)
  image[8] = static_cast<uint8_t>(payload_len);
  image[9] = static_cast<uint8_t>(payload_len >> 8);
  image[10] = static_cast<uint8_t>(payload_len >> 16);
  image[11] = static_cast<uint8_t>(payload_len >> 24);
  const uint32_t crc = ingest::Crc32c(image.data() + kHeader, payload_len);
  image[12] = static_cast<uint8_t>(crc);
  image[13] = static_cast<uint8_t>(crc >> 8);
  image[14] = static_cast<uint8_t>(crc >> 16);
  image[15] = static_cast<uint8_t>(crc >> 24);

  ingest::SnapshotData decoded;
  std::string err;
  ASSERT_TRUE(ingest::DecodeSnapshot(image.data(), image.size(), decoded, &err))
      << err;
  EXPECT_EQ(decoded.record_offset, 25u);
  EXPECT_EQ(decoded.ingested_edges, 0u);
  EXPECT_EQ(decoded.live_edges, 0u);
  EXPECT_EQ(decoded.watermark, 0u);
}

}  // namespace
}  // namespace temporal
}  // namespace gstream
