#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/driver.h"
#include "engine/engine.h"
#include "time/window.h"
#include "time/windowed_stream.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace temporal {
namespace {

/// The central equality of the temporal subsystem (DESIGN.md §13): running a
/// stream under a sliding-window policy must be *observationally identical*
/// to running the equivalent stream with every expiry written out as an
/// explicit deletion (and every query TTL as an explicit removal) — for
/// every view engine, per-update batch or windowed batch, with or without
/// shard threads. Expiry adds no new engine semantics, only stream rewriting.

struct Emission {
  uint64_t index;
  UpdateResult result;
};

bool operator==(const Emission& a, const Emission& b) {
  return a.index == b.index && a.result.changed == b.result.changed &&
         a.result.triggered == b.result.triggered &&
         a.result.per_query == b.result.per_query;
}

std::vector<EngineKind> ViewEngineKinds() {
  std::vector<EngineKind> kinds;
  for (EngineKind kind : PaperEngineKinds())
    if (kind != EngineKind::kGraphDb) kinds.push_back(kind);
  return kinds;
}

class WindowedOracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::SnbConfig cfg;
    cfg.num_updates = 1200;
    cfg.seed = 17;
    cfg.num_places = 10;
    cfg.num_tags = 10;
    w_ = new workload::Workload(workload::GenerateSnb(cfg));

    workload::QueryGenConfig qcfg;
    qcfg.num_queries = 8;
    qcfg.avg_size = 4.0;
    qcfg.selectivity = 0.5;
    qcfg.overlap = 0.5;
    qcfg.seed = 5;
    queries_ = new std::vector<QueryPattern>(
        workload::GenerateQueries(*w_, qcfg).queries);

    // Synthetic event time: ~20 records per tick with occasional jumps, so
    // windows expire in batches mid-stream (not only at the tail).
    events_ = new std::vector<StreamEvent>();
    for (size_t i = 0; i < w_->stream.size(); ++i) {
      EdgeUpdate u = w_->stream[i];
      u.ts = (i / 20) * 10 + (i % 20 == 19 ? 25 : 0);
      events_->push_back(StreamEvent::Update(u));
    }
  }

  static void TearDownTestSuite() {
    delete w_;
    delete queries_;
    delete events_;
    w_ = nullptr;
    queries_ = nullptr;
    events_ = nullptr;
  }

  static std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind) {
    auto engine = CreateEngine(kind);
    for (QueryId qid = 0; qid < queries_->size(); ++qid)
      engine->AddQuery(qid, (*queries_)[qid]);
    return engine;
  }

  /// Runs `events` windowed under (`window`, `config`) and captures the full
  /// emission sequence plus the final fingerprint.
  struct Captured {
    WindowedRunStats stats;
    std::vector<Emission> emissions;
    uint64_t fingerprint = 0;
  };
  static Captured Run(EngineKind kind, const std::vector<StreamEvent>& events,
                      const WindowConfig& window, size_t batch, int threads) {
    Captured out;
    auto engine = MakeEngine(kind);
    RunConfig config;
    config.batch_window = batch;
    config.batch_threads = threads;
    out.stats = RunWindowedStream(
        *engine, events, window, config,
        [&](uint64_t idx, const UpdateResult& r) {
          out.emissions.push_back({idx, r});
        });
    out.fingerprint = engine->StateFingerprint();
    return out;
  }

  static void ExpectRunsEqual(const Captured& a, const Captured& b,
                              const std::string& label) {
    EXPECT_EQ(a.fingerprint, b.fingerprint) << label;
    EXPECT_EQ(a.stats.mixed.updates_applied, b.stats.mixed.updates_applied)
        << label;
    EXPECT_EQ(a.stats.mixed.new_embeddings, b.stats.mixed.new_embeddings)
        << label;
    ASSERT_EQ(a.emissions.size(), b.emissions.size()) << label;
    for (size_t i = 0; i < a.emissions.size(); ++i)
      ASSERT_TRUE(a.emissions[i] == b.emissions[i])
          << label << ": emission " << i << " (record " << a.emissions[i].index
          << ") diverged";
  }

  static workload::Workload* w_;
  static std::vector<QueryPattern>* queries_;
  static std::vector<StreamEvent>* events_;
};

workload::Workload* WindowedOracleTest::w_ = nullptr;
std::vector<QueryPattern>* WindowedOracleTest::queries_ = nullptr;
std::vector<StreamEvent>* WindowedOracleTest::events_ = nullptr;

WindowConfig TimeWindow(uint64_t width) {
  WindowConfig cfg;
  cfg.policy = WindowPolicy::kTime;
  cfg.width = width;
  return cfg;
}

TEST_F(WindowedOracleTest, OracleExpansionIsDeterministicAndAccounted) {
  const ExpiryOracle oracle = MaterializeExpiryOracle(*events_, TimeWindow(100));
  ASSERT_GT(oracle.expired_edges, 0u) << "window too wide to exercise expiry";
  EXPECT_EQ(oracle.events.size(), oracle.synthetic.size());
  EXPECT_EQ(oracle.events.size(), events_->size() + oracle.expired_edges);
  EXPECT_EQ(oracle.ingested_edges,
            oracle.live_edges + oracle.expired_edges + oracle.removed_edges);

  size_t synthetic = 0;
  for (size_t i = 0; i < oracle.events.size(); ++i) {
    if (!oracle.synthetic[i]) continue;
    ++synthetic;
    ASSERT_EQ(oracle.events[i].kind, StreamEvent::Kind::kUpdate);
    EXPECT_EQ(oracle.events[i].update.op, UpdateOp::kDelete);
  }
  EXPECT_EQ(synthetic, oracle.expired_edges);

  // Purity: materializing twice yields the same expansion.
  const ExpiryOracle again = MaterializeExpiryOracle(*events_, TimeWindow(100));
  ASSERT_EQ(again.events.size(), oracle.events.size());
  for (size_t i = 0; i < oracle.events.size(); ++i)
    ASSERT_TRUE(oracle.events[i].update == again.events[i].update) << i;
}

TEST_F(WindowedOracleTest, WindowedRunEqualsExplicitDeletionsForEveryEngine) {
  const WindowConfig window = TimeWindow(100);
  const ExpiryOracle oracle = MaterializeExpiryOracle(*events_, window);
  ASSERT_GT(oracle.expired_edges, 0u);

  for (EngineKind kind : ViewEngineKinds()) {
    const std::string name = EngineKindName(kind);
    // The oracle side: the pre-expanded stream under NO window policy — an
    // ordinary mixed run whose deletions happen to be written out.
    const Captured explicit_dels =
        Run(kind, oracle.events, WindowConfig{}, /*batch=*/1, /*threads=*/1);
    // The windowed side, per-update and batched (with shard threads).
    for (const auto& [batch, threads] :
         std::vector<std::pair<size_t, int>>{{1, 1}, {7, 1}, {64, 4}}) {
      const Captured windowed = Run(kind, *events_, window, batch, threads);
      EXPECT_EQ(windowed.stats.expired_edges, oracle.expired_edges) << name;
      EXPECT_EQ(windowed.stats.live_edges, oracle.live_edges) << name;
      EXPECT_EQ(windowed.stats.ingested_edges,
                windowed.stats.live_edges + windowed.stats.expired_edges +
                    windowed.stats.removed_edges)
          << name;
      ExpectRunsEqual(explicit_dels, windowed,
                      name + " batch=" + std::to_string(batch) +
                          " threads=" + std::to_string(threads));
    }
  }
}

TEST_F(WindowedOracleTest, CountWindowAgreesToo) {
  WindowConfig window;
  window.policy = WindowPolicy::kCount;
  window.width = 200;
  const ExpiryOracle oracle = MaterializeExpiryOracle(*events_, window);
  ASSERT_GT(oracle.expired_edges, 0u);
  EXPECT_LE(oracle.live_edges, window.width);

  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kInvPlus,
                          EngineKind::kIncPlus}) {
    const std::string name = EngineKindName(kind);
    const Captured explicit_dels =
        Run(kind, oracle.events, WindowConfig{}, 1, 1);
    const Captured windowed = Run(kind, *events_, window, 32, 2);
    ExpectRunsEqual(explicit_dels, windowed, name + " count-window");
  }
}

TEST_F(WindowedOracleTest, TtlQueriesExpireAndMatchExplicitRemovals) {
  // A TTL'd query registered mid-stream: the windowed runner must remove it
  // exactly when the watermark passes registration + ttl, matching a stream
  // with the removal written out at that position.
  std::vector<StreamEvent> events = *events_;
  const QueryId ttl_qid = static_cast<QueryId>(queries_->size());
  StreamEvent add = StreamEvent::Add(ttl_qid, (*queries_)[0], /*ttl=*/150);
  events.insert(events.begin() + 100, add);

  const WindowConfig window = TimeWindow(100);
  const ExpiryOracle oracle = MaterializeExpiryOracle(events, window);
  EXPECT_EQ(oracle.expired_queries, 1u);

  // The expansion holds exactly one synthetic removal of that query.
  size_t removals = 0;
  for (size_t i = 0; i < oracle.events.size(); ++i)
    if (oracle.synthetic[i] &&
        oracle.events[i].kind == StreamEvent::Kind::kRemoveQuery) {
      ++removals;
      EXPECT_EQ(oracle.events[i].qid, ttl_qid);
    }
  EXPECT_EQ(removals, 1u);

  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kInv}) {
    const std::string name = EngineKindName(kind);
    const Captured explicit_rm = Run(kind, oracle.events, WindowConfig{}, 1, 1);
    const Captured windowed = Run(kind, events, window, 16, 1);
    EXPECT_EQ(windowed.stats.expired_queries, 1u) << name;
    EXPECT_EQ(windowed.stats.mixed.queries_removed, 1u) << name;
    ExpectRunsEqual(explicit_rm, windowed, name + " ttl-query");
  }

  // An immortal registration (ttl 0) is never auto-removed.
  std::vector<StreamEvent> immortal = *events_;
  immortal.insert(immortal.begin() + 100,
                  StreamEvent::Add(ttl_qid, (*queries_)[0]));
  const ExpiryOracle none = MaterializeExpiryOracle(immortal, window);
  EXPECT_EQ(none.expired_queries, 0u);
}

TEST_F(WindowedOracleTest, NoPolicyOnPlainStreamIsIdentity) {
  const ExpiryOracle oracle = MaterializeExpiryOracle(*events_, WindowConfig{});
  EXPECT_EQ(oracle.events.size(), events_->size());
  EXPECT_EQ(oracle.expired_edges, 0u);
  EXPECT_EQ(oracle.ingested_edges, 0u);  // pass-through tracks nothing
  for (uint8_t s : oracle.synthetic) EXPECT_EQ(s, 0);
}

}  // namespace
}  // namespace temporal
}  // namespace gstream
