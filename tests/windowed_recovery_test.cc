#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "ingest/gsb_writer.h"
#include "ingest/pipeline.h"
#include "ingest/snapshot.h"
#include "time/window.h"
#include "time/windowed_stream.h"
#include "workload/query_gen.h"
#include "workload/snb.h"

namespace gstream {
namespace ingest {
namespace {

/// Crash consistency *with a live window* (DESIGN.md §13): expiry is
/// event-time deterministic, so a snapshot never serializes the
/// WindowManager — recovery fast-forwards the timestamped prefix, which
/// re-derives the exact live-edge horizon, and the v2 snapshot's temporal
/// counters cross-check that rebuild the same way the engine fingerprint
/// cross-checks the view state. The suite kills a windowed replay
/// mid-stream (edges expiring before AND after the crash point), resumes
/// into a fresh engine, and requires byte-identical tail emissions plus
/// identical final temporal accounting — for every view engine. It also
/// pins the windowed file replay to the in-memory windowed driver.

constexpr size_t kWindow = 25;
constexpr uint64_t kKillIndex = 800;   // Simulated crash point (record index).
constexpr uint64_t kWindowWidth = 120; // Event-time width; ~24 records/tick
                                       // step below ⇒ expiry well before kill.

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  std::fclose(f);
  return true;
}

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

struct Emission {
  uint64_t index;
  UpdateResult result;
};

bool operator==(const Emission& a, const Emission& b) {
  return a.index == b.index && a.result.changed == b.result.changed &&
         a.result.triggered == b.result.triggered &&
         a.result.per_query == b.result.per_query;
}

temporal::WindowConfig TimeWindow() {
  temporal::WindowConfig cfg;
  cfg.policy = temporal::WindowPolicy::kTime;
  cfg.width = kWindowWidth;
  return cfg;
}

class WindowedRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::SnbConfig cfg;
    cfg.num_updates = 1500;
    cfg.seed = 21;
    cfg.num_places = 10;
    cfg.num_tags = 10;
    w_ = new workload::Workload(workload::GenerateSnb(cfg));

    workload::QueryGenConfig qcfg;
    qcfg.num_queries = 8;
    qcfg.avg_size = 4.0;
    qcfg.selectivity = 0.5;
    qcfg.overlap = 0.5;
    qcfg.seed = 7;
    queries_ = new std::vector<QueryPattern>(
        workload::GenerateQueries(*w_, qcfg).queries);

    // Timestamped stream: ~12 records per tick of 5 units, with a straggler
    // every 40th record (ts jumps back within the watermark) so recovery
    // re-derives a horizon shaped by real out-of-order arrival.
    stamped_ = new std::vector<EdgeUpdate>(w_->stream.updates());
    for (size_t i = 0; i < stamped_->size(); ++i) {
      uint64_t ts = (i / 12) * 5;
      if (i % 40 == 39 && ts >= 10) ts -= 10;
      (*stamped_)[i].ts = ts;
    }
    image_ = new std::vector<uint8_t>(EncodeGsb(*w_->interner, *stamped_, {}));
  }

  static void TearDownTestSuite() {
    delete w_;
    delete queries_;
    delete stamped_;
    delete image_;
    w_ = nullptr;
    queries_ = nullptr;
    stamped_ = nullptr;
    image_ = nullptr;
  }

  static std::unique_ptr<ContinuousEngine> MakeEngine(EngineKind kind) {
    auto engine = CreateEngine(kind);
    for (QueryId qid = 0; qid < queries_->size(); ++qid)
      engine->AddQuery(qid, (*queries_)[qid]);
    return engine;
  }

  static IngestOptions WindowedOpts() {
    IngestOptions opts;
    opts.batch_window = kWindow;
    opts.reader_threads = 2;
    opts.ring_capacity = 4;
    opts.window = TimeWindow();
    return opts;
  }

  struct FullRun {
    IngestStats stats;
    std::vector<Emission> emissions;
    std::vector<uint8_t> killed_snapshot;  ///< Bytes grabbed at the crash.
  };

  // Uninterrupted windowed run with snapshot cadence; grabs the snapshot
  // file's bytes the moment the emission index crosses kKillIndex.
  static FullRun RunFull(EngineKind kind, const std::string& snapshot_path) {
    FullRun out;
    MemorySource src(*image_);
    IngestSession session;
    EXPECT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
    auto engine = MakeEngine(kind);
    IngestOptions opts = WindowedOpts();
    opts.snapshot_every_windows = 2;
    opts.snapshot_path = snapshot_path;
    out.stats = session.Replay(
        *engine, opts, [&](uint64_t idx, const UpdateResult& r) {
          out.emissions.push_back({idx, r});
          if (idx >= kKillIndex && out.killed_snapshot.empty())
            ReadFileBytes(snapshot_path, out.killed_snapshot);
        });
    return out;
  }

  static workload::Workload* w_;
  static std::vector<QueryPattern>* queries_;
  static std::vector<EdgeUpdate>* stamped_;
  static std::vector<uint8_t>* image_;
};

workload::Workload* WindowedRecoveryTest::w_ = nullptr;
std::vector<QueryPattern>* WindowedRecoveryTest::queries_ = nullptr;
std::vector<EdgeUpdate>* WindowedRecoveryTest::stamped_ = nullptr;
std::vector<uint8_t>* WindowedRecoveryTest::image_ = nullptr;

TEST_F(WindowedRecoveryTest, KillAndResumeWithLiveWindowIsExact) {
  for (EngineKind kind : PaperEngineKinds()) {
    if (kind == EngineKind::kGraphDb) continue;  // No snapshot fingerprint.
    const std::string name = EngineKindName(kind);
    const std::string snap_path =
        testing::TempDir() + "/wrecovery_" + name + ".snap";
    const std::string killed_path =
        testing::TempDir() + "/wrecovery_" + name + "_killed.snap";

    FullRun full = RunFull(kind, snap_path);
    ASSERT_FALSE(full.stats.failed) << name << ": " << full.stats.error;
    // Record accounting stays in file terms: internal expiry deletions never
    // consume record indexes (pipeline contract).
    ASSERT_EQ(full.stats.run.updates_applied, stamped_->size()) << name;
    ASSERT_GT(full.stats.expired_edges, 0u)
        << name << ": window too wide — nothing expired, test is vacuous";
    ASSERT_EQ(full.stats.ingested_edges,
              full.stats.live_edges + full.stats.expired_edges +
                  full.stats.removed_edges)
        << name;
    ASSERT_GT(full.stats.snapshots_written, 0u) << name;
    ASSERT_FALSE(full.killed_snapshot.empty()) << name;
    ASSERT_TRUE(WriteFileBytes(killed_path, full.killed_snapshot)) << name;

    SnapshotData snap;
    std::string error;
    ASSERT_TRUE(ReadSnapshot(killed_path, snap, &error)) << name << ": " << error;
    EXPECT_EQ(snap.engine_name, name);
    EXPECT_EQ(snap.record_offset % kWindow, 0u) << name;
    // The crash point sits mid-window: edges had already expired (the v2
    // horizon is non-trivial) AND more expire after the boundary.
    EXPECT_GT(snap.expired_edges, 0u) << name;
    EXPECT_LT(snap.expired_edges, full.stats.expired_edges) << name;
    EXPECT_GT(snap.live_edges, 0u) << name;
    EXPECT_EQ(snap.ingested_edges,
              snap.live_edges + snap.expired_edges + snap.removed_edges)
        << name;
    EXPECT_GT(snap.watermark, 0u) << name;

    // Recover into a FRESH engine with the same queries and window config.
    MemorySource src(*image_);
    IngestSession session;
    ASSERT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
    std::vector<Emission> tail;
    auto resumed = MakeEngine(kind);
    IngestStats stats = ResumeReplay(
        *resumed, session, snap, WindowedOpts(),
        [&](uint64_t idx, const UpdateResult& r) { tail.push_back({idx, r}); });
    ASSERT_FALSE(stats.failed) << name << ": " << stats.error;

    // Final counters — engine side and temporal side — match exactly.
    EXPECT_EQ(stats.run.updates_applied, full.stats.run.updates_applied) << name;
    EXPECT_EQ(stats.run.new_embeddings, full.stats.run.new_embeddings) << name;
    EXPECT_EQ(stats.windows_finalized, full.stats.windows_finalized) << name;
    EXPECT_EQ(stats.ingested_edges, full.stats.ingested_edges) << name;
    EXPECT_EQ(stats.expired_edges, full.stats.expired_edges) << name;
    EXPECT_EQ(stats.expiry_batches, full.stats.expiry_batches) << name;
    EXPECT_EQ(stats.live_edges, full.stats.live_edges) << name;
    EXPECT_EQ(stats.watermark, full.stats.watermark) << name;

    // The resumed run emits exactly the uninterrupted run's tail.
    std::vector<Emission> expected_tail;
    for (const Emission& e : full.emissions)
      if (e.index >= snap.record_offset) expected_tail.push_back(e);
    ASSERT_EQ(tail.size(), expected_tail.size()) << name;
    for (size_t i = 0; i < tail.size(); ++i)
      ASSERT_TRUE(tail[i] == expected_tail[i])
          << name << " tail emission " << i << " (record " << tail[i].index
          << ") diverged";

    std::remove(snap_path.c_str());
    std::remove(killed_path.c_str());
  }
}

TEST_F(WindowedRecoveryTest, ResumeWithoutWindowConfigIsRejected) {
  // A v2 snapshot carrying a live horizon cannot be resumed into a replay
  // that splices no expiry — the temporal cross-check must refuse, not
  // silently diverge.
  const std::string snap_path = testing::TempDir() + "/wrecovery_nowin.snap";
  FullRun full = RunFull(EngineKind::kTricPlus, snap_path);
  ASSERT_FALSE(full.stats.failed) << full.stats.error;
  ASSERT_FALSE(full.killed_snapshot.empty());
  ASSERT_TRUE(WriteFileBytes(snap_path, full.killed_snapshot));
  SnapshotData snap;
  std::string error;
  ASSERT_TRUE(ReadSnapshot(snap_path, snap, &error)) << error;
  ASSERT_GT(snap.expired_edges, 0u);

  MemorySource src(*image_);
  IngestSession session;
  ASSERT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
  auto engine = MakeEngine(EngineKind::kTricPlus);
  IngestOptions opts = WindowedOpts();
  opts.window = temporal::WindowConfig{};  // Policy dropped on resume.
  IngestStats stats = ResumeReplay(*engine, session, snap, opts);
  // Whichever cross-check trips first (the counter replay diverges as soon
  // as the un-spliced prefix keeps expired edges alive, else the horizon
  // check), recovery must refuse rather than silently diverge.
  EXPECT_TRUE(stats.failed);
  EXPECT_NE(stats.error.find("cross-check failed"), std::string::npos)
      << stats.error;
  std::remove(snap_path.c_str());
}

TEST_F(WindowedRecoveryTest, FileReplayMatchesInMemoryWindowedDriver) {
  // The ingest pipeline's spliced expiry and the in-memory windowed driver
  // are two implementations of one contract; pin them to each other.
  std::vector<StreamEvent> events;
  for (const EdgeUpdate& u : *stamped_) events.push_back(StreamEvent::Update(u));

  for (EngineKind kind : {EngineKind::kTricPlus, EngineKind::kIncPlus}) {
    const std::string name = EngineKindName(kind);
    auto mem_engine = MakeEngine(kind);
    RunConfig config;
    config.batch_window = kWindow;
    const temporal::WindowedRunStats mem =
        temporal::RunWindowedStream(*mem_engine, events, TimeWindow(), config);

    MemorySource src(*image_);
    IngestSession session;
    ASSERT_TRUE(session.Open(src, CorruptPolicy::kFail)) << session.error();
    auto file_engine = MakeEngine(kind);
    IngestStats file = session.Replay(*file_engine, WindowedOpts());
    ASSERT_FALSE(file.failed) << name << ": " << file.error;

    EXPECT_EQ(file.expired_edges, mem.expired_edges) << name;
    EXPECT_EQ(file.expiry_batches, mem.expiry_batches) << name;
    EXPECT_EQ(file.live_edges, mem.live_edges) << name;
    EXPECT_EQ(file.watermark, mem.watermark) << name;
    EXPECT_EQ(file.run.new_embeddings, mem.mixed.new_embeddings) << name;
    EXPECT_EQ(mem_engine->StateFingerprint(), file_engine->StateFingerprint())
        << name;
  }
}

}  // namespace
}  // namespace ingest
}  // namespace gstream
