#include <gtest/gtest.h>

#include <unordered_set>

#include "graphdb/executor.h"
#include "query/path_cover.h"
#include "graphdb/store.h"
#include "workload/bio.h"
#include "workload/query_gen.h"
#include "workload/schema.h"
#include "workload/snb.h"
#include "workload/taxi.h"

namespace gstream {
namespace {

using workload::BioConfig;
using workload::GenerateBio;
using workload::GenerateQueries;
using workload::GenerateSnb;
using workload::GenerateTaxi;
using workload::QueryGenConfig;
using workload::Schema;
using workload::SnbConfig;
using workload::TaxiConfig;

TEST(Schema, EdgesFromAndInto) {
  Schema s;
  uint32_t a = s.AddClass("A");
  uint32_t b = s.AddClass("B");
  s.AddEdge(1, a, b);
  s.AddEdge(2, b, a);
  s.AddEdge(3, a, a);
  EXPECT_EQ(s.EdgesFrom(a).size(), 2u);
  EXPECT_EQ(s.EdgesInto(a).size(), 2u);
  EXPECT_EQ(s.EdgesTouching(a).size(), 3u);  // 1, 3 out; 2 in (3 not repeated)
}

TEST(Schema, FindCyclesIncludesSelfLoopRings) {
  Schema s;
  uint32_t a = s.AddClass("A");
  s.AddEdge(7, a, a);
  auto cycles = s.FindCycles(4);
  ASSERT_FALSE(cycles.empty());
  EXPECT_EQ(cycles[0].size(), 2u);
  EXPECT_EQ(cycles[0][0].label, 7u);
}

TEST(Schema, FindCyclesFindsMultiClassRings) {
  Schema s;
  uint32_t a = s.AddClass("A"), b = s.AddClass("B"), c = s.AddClass("C");
  s.AddEdge(1, a, b);
  s.AddEdge(2, b, c);
  s.AddEdge(3, c, a);
  auto cycles = s.FindCycles(4);
  bool found3 = false;
  for (const auto& cyc : cycles) found3 |= cyc.size() == 3;
  EXPECT_TRUE(found3);
}

template <typename Config, typename Gen>
void CheckDeterminism(Config config, Gen gen) {
  auto w1 = gen(config);
  auto w2 = gen(config);
  ASSERT_EQ(w1.stream.size(), w2.stream.size());
  for (size_t i = 0; i < w1.stream.size(); ++i) {
    EXPECT_EQ(w1.stream[i].src, w2.stream[i].src);
    EXPECT_EQ(w1.stream[i].label, w2.stream[i].label);
    EXPECT_EQ(w1.stream[i].dst, w2.stream[i].dst);
  }
}

TEST(SnbGenerator, DeterministicForSeed) {
  SnbConfig c;
  c.num_updates = 2000;
  CheckDeterminism(c, GenerateSnb);
}

TEST(TaxiGenerator, DeterministicForSeed) {
  TaxiConfig c;
  c.num_updates = 2000;
  CheckDeterminism(c, GenerateTaxi);
}

TEST(BioGenerator, DeterministicForSeed) {
  BioConfig c;
  c.num_updates = 2000;
  CheckDeterminism(c, GenerateBio);
}

TEST(SnbGenerator, VertexEdgeRatioNearPaper) {
  SnbConfig c;
  c.num_updates = 50000;
  auto w = GenerateSnb(c);
  EXPECT_EQ(w.stream.size(), c.num_updates);
  double ratio = static_cast<double>(w.stream.CountVertices(w.stream.size())) /
                 static_cast<double>(w.stream.size());
  // Paper: 0.57 at 100K edges. Allow a generous band.
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.75);
}

TEST(TaxiGenerator, VertexEdgeRatioNearPaper) {
  TaxiConfig c;
  c.num_updates = 50000;
  auto w = GenerateTaxi(c);
  double ratio = static_cast<double>(w.stream.CountVertices(w.stream.size())) /
                 static_cast<double>(w.stream.size());
  // Paper: 0.28 at 1M edges.
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.45);
}

TEST(BioGenerator, FollowsGrowthCurve) {
  BioConfig c;
  c.num_updates = 100000;
  auto w = GenerateBio(c);
  size_t vertices = w.stream.CountVertices(w.stream.size());
  // Target: 17.2K vertices at 100K edges (paper's BioGRID statistics).
  EXPECT_GT(vertices, 14000u);
  EXPECT_LT(vertices, 21000u);
}

TEST(BioGenerator, SingleLabelSingleClass) {
  BioConfig c;
  c.num_updates = 5000;
  auto w = GenerateBio(c);
  auto stats = workload::ComputeStats(w);
  EXPECT_EQ(stats.distinct_labels, 1u);
  EXPECT_EQ(w.schema.NumClasses(), 1u);
}

TEST(SnbGenerator, NoDuplicateEntityNames) {
  SnbConfig c;
  c.num_updates = 5000;
  auto w = GenerateSnb(c);
  for (const auto& pool : w.entities) {
    std::unordered_set<VertexId> seen(pool.begin(), pool.end());
    EXPECT_EQ(seen.size(), pool.size());
  }
}

class QueryGenTest : public ::testing::Test {
 protected:
  /// Counts a query's matches on the workload's final graph.
  static uint64_t CountOnFinalGraph(const workload::Workload& w,
                                    const QueryPattern& q) {
    graphdb::GraphStore store;
    for (const auto& u : w.stream.updates()) store.AddEdge(u.src, u.label, u.dst);
    graphdb::MatchExecutor exec(&store);
    return exec.CountMatches(q, graphdb::PlanQuery(q), /*limit=*/1);
  }
};

TEST_F(QueryGenTest, ExactPlantedCount) {
  SnbConfig sc;
  sc.num_updates = 3000;
  auto w = GenerateSnb(sc);
  QueryGenConfig qc;
  qc.num_queries = 80;
  qc.selectivity = 0.25;
  auto qs = GenerateQueries(w, qc);
  EXPECT_EQ(qs.queries.size(), 80u);
  EXPECT_EQ(qs.num_planted, 20u);
}

TEST_F(QueryGenTest, SigmaGroundTruthHolds) {
  SnbConfig sc;
  sc.num_updates = 3000;
  auto w = GenerateSnb(sc);
  QueryGenConfig qc;
  qc.num_queries = 60;
  qc.selectivity = 0.3;
  qc.seed = 17;
  auto qs = GenerateQueries(w, qc);
  for (size_t i = 0; i < qs.queries.size(); ++i) {
    uint64_t matches = CountOnFinalGraph(w, qs.queries[i]);
    if (qs.planted[i]) {
      EXPECT_GT(matches, 0u) << "planted query " << i << " unsatisfied: "
                             << qs.queries[i].ToString(*w.interner);
    } else {
      EXPECT_EQ(matches, 0u) << "poisoned query " << i << " satisfied: "
                             << qs.queries[i].ToString(*w.interner);
    }
  }
}

TEST_F(QueryGenTest, SigmaGroundTruthHoldsOnBio) {
  BioConfig bc;
  bc.num_updates = 2000;
  bc.growth_coefficient = 2000;
  auto w = GenerateBio(bc);
  QueryGenConfig qc;
  qc.num_queries = 40;
  qc.selectivity = 0.5;
  qc.seed = 23;
  auto qs = GenerateQueries(w, qc);
  for (size_t i = 0; i < qs.queries.size(); ++i) {
    uint64_t matches = CountOnFinalGraph(w, qs.queries[i]);
    if (qs.planted[i]) {
      EXPECT_GT(matches, 0u) << "planted bio query " << i << " unsatisfied";
    } else {
      EXPECT_EQ(matches, 0u) << "poisoned bio query " << i << " satisfied";
    }
  }
}

TEST_F(QueryGenTest, AverageSizeNearL) {
  SnbConfig sc;
  sc.num_updates = 3000;
  auto w = GenerateSnb(sc);
  QueryGenConfig qc;
  qc.num_queries = 200;
  qc.avg_size = 5;
  auto qs = GenerateQueries(w, qc);
  double total = 0;
  for (const auto& q : qs.queries) total += static_cast<double>(q.NumEdges());
  double avg = total / static_cast<double>(qs.queries.size());
  EXPECT_GT(avg, 3.2);
  EXPECT_LT(avg, 6.5);
}

TEST_F(QueryGenTest, OverlapIncreasesSharedStructure) {
  SnbConfig sc;
  sc.num_updates = 3000;
  auto w = GenerateSnb(sc);

  // The overlap knob controls structural fragment reuse; measure it on what
  // it directly shapes — the label sequences of the queries' covering paths.
  auto distinct_label_paths = [&](double overlap) {
    QueryGenConfig qc;
    qc.num_queries = 150;
    qc.overlap = overlap;
    qc.seed = 5;
    auto qs = GenerateQueries(w, qc);
    std::unordered_set<std::string> sigs;
    for (const auto& q : qs.queries) {
      for (const auto& path : ExtractCoveringPaths(q)) {
        std::string s;
        for (uint32_t e : path.edges)
          s += w.interner->Lookup(q.edge(e).label) + ">";
        sigs.insert(std::move(s));
      }
    }
    return sigs.size();
  };
  EXPECT_LT(distinct_label_paths(0.9), distinct_label_paths(0.0));
}

TEST_F(QueryGenTest, DeterministicForSeed) {
  SnbConfig sc;
  sc.num_updates = 2000;
  auto w = GenerateSnb(sc);
  QueryGenConfig qc;
  qc.num_queries = 50;
  auto a = GenerateQueries(w, qc);
  auto b = GenerateQueries(w, qc);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i)
    EXPECT_EQ(a.queries[i].ToString(*w.interner), b.queries[i].ToString(*w.interner));
}

TEST_F(QueryGenTest, AllQueriesValid) {
  TaxiConfig tc;
  tc.num_updates = 2000;
  auto w = GenerateTaxi(tc);
  QueryGenConfig qc;
  qc.num_queries = 100;
  auto qs = GenerateQueries(w, qc);
  for (const auto& q : qs.queries) {
    EXPECT_TRUE(q.IsValid());
    EXPECT_GE(q.NumEdges(), 1u);
  }
}

}  // namespace
}  // namespace gstream
