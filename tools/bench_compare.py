#!/usr/bin/env python3
"""Bench-regression gate: diff two BENCH_*.json trajectory snapshots.

Usage:
  tools/bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
  tools/bench_compare.py --newest-baseline DIR FRESH.json
  tools/bench_compare.py --self-test BASELINE.json
  tools/bench_compare.py --scaling-gate FRESH.json
  ... all optionally with --noise-margins BENCH_NOISE.json

--newest-baseline picks the committed <prefix><N>.json with the highest N in
DIR as the baseline (default prefix BENCH_PR; pass --baseline-prefix
BENCH_RUNNER_PR for the runner-native scheduler snapshots). When DIR holds
no baseline at all (the first PR of a repo, or a checkout without committed
snapshots) the gate passes cleanly with an explanatory message instead of
erroring — "no baseline yet" is not a regression.

Trajectory files are the {"generated_by": ..., "lines": [...]} documents
written by tools/bench_smoke.sh and tools/bench_runner.sh (one dict per
BENCH_JSON line). Lines are paired across the two files by their identity
fields — every string-valued field (bench, dataset, engine, name, ...) plus
the numeric sweep coordinates in SWEEP_FIELDS (overlap, threads, ...) when
present. For each pair the first throughput metric present in METRICS is
compared; the gate fails when the fresh value drops more than the metric's
margin below the baseline.

Margins: the flat --threshold (default 25%) is the uncalibrated fallback.
With --noise-margins, per-metric thresholds come from a committed
BENCH_NOISE.json produced by tools/bench_noise_calibrate.py from repeated
runs — lookup order is benches[<bench>][<metric>], then metrics[<metric>],
then the file's "default", then --threshold. A calibrated margin is
typically far tighter than 25%, which is the point: a 10% scheduler
regression must not hide inside a flat one-size-fits-all allowance.

Completed cells only: a cell that hit its time budget measures an arbitrary
stream prefix, and for engines whose per-update cost grows with the graph a
partial cell's updates/s is not comparable across runs (a *faster* build
processes a longer, more expensive prefix and can report a lower average).
Any line flagged "partial" on either side is therefore skipped, as are lines
present on only one side (new or retired benches).

--scaling-gate checks a single snapshot for parallel-scaling sanity: lines
that differ only in their "threads" coordinate are grouped, and for each
group the highest-thread cell must not be slower than the lowest-thread cell
(beyond the metric's noise margin) on any SCALING_METRICS value. Only
metrics where more threads must help are gated — raw dispatch overhead
(tasks_per_sec on trivial tasks) legitimately degrades with contention and
is exempt. CI's bench-multicore job runs this against the runner-native
BENCH_RUNNER.json, where threads=4 losing to threads=1 on real engine work
means the work-stealing fan-out broke.

--self-test verifies the gate end-to-end against a single snapshot: the
snapshot must pass against itself, and an injected synthetic regression
(one comparable metric scaled below its margin) must make it fail. With
--noise-margins it additionally proves the tightening has teeth: a 10%
injected regression on a gated metric whose calibrated margin is below 10%
must fail, and at least one such metric must exist in the snapshot.

Exit status: 0 ok, 1 regression detected, 2 usage or parse error.
"""

import argparse
import copy
import json
import re
import sys
from pathlib import Path

# Throughput metrics, in priority order; higher is better.
METRICS = ("updates_per_sec", "items_per_sec", "max_items_per_sec",
           "tasks_per_sec", "speedup_vs_static")

# Routing-selectivity counters; *lower* is better. Gated independently of
# throughput: a routed cell whose candidates/update starts scaling with
# |QDB| again is a routing regression even when raw updates/s still passes
# (e.g. a faster join masking a broken posting list).
LOWER_IS_BETTER = ("candidates_per_update",)

# Numeric sweep coordinates that are part of a line's identity: two cells
# that differ only in one of these are different cells, not a regression.
SWEEP_FIELDS = ("overlap", "tenants", "qdb", "threads", "hot_factor", "batch")

# Metrics gated by --scaling-gate: more threads must not make these worse.
# Deliberately excludes tasks_per_sec — the dispatch cell measures per-task
# overhead on trivial tasks, where extra executors only add steal traffic.
SCALING_METRICS = ("updates_per_sec", "speedup_vs_static")

# Temporal accounting fields (the fig16 windowed cells): any line carrying
# all three must satisfy ingested == live + expired + removed.
ACCOUNTING_FIELDS = ("ingested_edges", "live_edges", "expired_edges")


def die(msg):
    """Usage / parse error: the documented exit status 2, never a silent 1."""
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load_lines(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path} is not a JSON object "
            "(expected a bench trajectory snapshot)")
    lines = doc.get("lines")
    if not isinstance(lines, list):
        die(f"{path} has no 'lines' array "
            "(expected a bench trajectory snapshot)")
    if not all(isinstance(line, dict) for line in lines):
        die(f"{path}: every entry of 'lines' must be an object")
    return lines


class Margins:
    """Per-metric regression thresholds, from a committed BENCH_NOISE.json.

    Lookup order for a (line, metric) pair: the per-bench override
    benches[line["bench"]][metric], then metrics[metric], then the file's
    "default", then the CLI --threshold fallback. Without a margins file
    every lookup returns the flat fallback — the pre-calibration behavior.
    """

    def __init__(self, fallback, path=None):
        self.fallback = fallback
        self.doc = {}
        self.path = path
        if path is None:
            return
        try:
            with open(path) as f:
                self.doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            die(f"cannot load noise margins {path}: {e}")
        if not isinstance(self.doc, dict):
            die(f"{path}: noise margins must be a JSON object")
        for metric, v in self.doc.get("metrics", {}).items():
            self._check(f"metrics.{metric}", v)
        for bench, overrides in self.doc.get("benches", {}).items():
            for metric, v in overrides.items():
                self._check(f"benches.{bench}.{metric}", v)
        if "default" in self.doc:
            self._check("default", self.doc["default"])

    def _check(self, what, v):
        if not isinstance(v, (int, float)) or not 0.0 < v < 1.0:
            die(f"{self.path}: margin {what} must be a number in (0, 1), "
                f"got {v!r}")

    def margin(self, line, metric):
        bench = line.get("bench")
        per_bench = self.doc.get("benches", {})
        if isinstance(bench, str) and metric in per_bench.get(bench, {}):
            return float(per_bench[bench][metric])
        if metric in self.doc.get("metrics", {}):
            return float(self.doc["metrics"][metric])
        if "default" in self.doc:
            return float(self.doc["default"])
        return self.fallback


def newest_baseline(dir_path, prefix):
    """Highest-numbered committed <prefix><N>.json in `dir_path`, or None."""
    try:
        candidates = list(Path(dir_path).glob(f"{prefix}*.json"))
    except OSError as e:
        die(f"cannot scan {dir_path}: {e}")
    pattern = re.compile(re.escape(prefix) + r"(\d+)\.json")
    best, best_n = None, -1
    for path in candidates:
        m = pattern.fullmatch(path.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = path, int(m.group(1))
    return best


def identity(line):
    """Stable pairing key: the string-valued fields + sweep coordinates."""
    key = [(k, v) for k, v in line.items() if isinstance(v, str)]
    for k in SWEEP_FIELDS:
        if k in line and not isinstance(line[k], str):
            key.append((k, line[k]))
    return tuple(sorted(key))


def accounting_violations(lines):
    """Expiry-accounting gate: a windowed cell whose counters do not add up
    (`ingested != live + expired + removed`) indicates a WindowManager that
    leaked or double-retired edges — a correctness failure, not a perf delta,
    so it fails the gate regardless of thresholds or partial flags."""
    bad = []
    for line in lines:
        if not all(isinstance(line.get(f), (int, float))
                   for f in ACCOUNTING_FIELDS):
            continue
        expected = (line["live_edges"] + line["expired_edges"] +
                    line.get("removed_edges", 0))
        if line["ingested_edges"] != expected:
            name = " ".join(f"{k}={v}" for k, v in identity(line))
            bad.append(f"{name}: ingested_edges={line['ingested_edges']} != "
                       f"live+expired+removed={expected}")
    return bad


def metric_of(line):
    for m in METRICS:
        v = line.get(m)
        if isinstance(v, (int, float)) and v > 0:
            return m, float(v)
    return None, None


def index_by_identity(lines, path):
    out = {}
    for line in lines:
        key = identity(line)
        if key in out:
            print(f"bench_compare: warning: duplicate line identity in {path}: "
                  f"{dict(key)} (keeping the first)", file=sys.stderr)
            continue
        out[key] = line
    return out


def compare(base_lines, fresh_lines, margins, quiet=False):
    """Returns (regressions, compared): lists of result-row dicts."""
    base = index_by_identity(base_lines, "baseline")
    fresh = index_by_identity(fresh_lines, "fresh")
    regressions, compared, skipped = [], [], []

    for key, bline in base.items():
        fline = fresh.get(key)
        name = " ".join(f"{k}={v}" for k, v in key)
        if fline is None:
            skipped.append((name, "missing from fresh run"))
            continue
        if bline.get("partial") or fline.get("partial"):
            skipped.append((name, "partial (budget-clipped) cell"))
            continue
        metric, bval = metric_of(bline)
        if metric is not None:
            fval = fline.get(metric)
            if not isinstance(fval, (int, float)) or fval <= 0:
                skipped.append((name, f"fresh run lacks {metric}"))
            else:
                ratio = fval / bval
                margin = margins.margin(bline, metric)
                row = {"name": name, "metric": metric, "base": bval,
                       "fresh": fval, "ratio": ratio, "margin": margin}
                compared.append(row)
                if ratio < 1.0 - margin:
                    regressions.append(row)
        for lmetric in LOWER_IS_BETTER:
            lbase = bline.get(lmetric)
            lfresh = fline.get(lmetric)
            if not isinstance(lbase, (int, float)) or lbase <= 0:
                continue
            if not isinstance(lfresh, (int, float)) or lfresh <= 0:
                skipped.append((name, f"fresh run lacks {lmetric}"))
                continue
            # Lower is better: the gate trips when the fresh value grew more
            # than the margin above the baseline. `ratio` is inverted
            # (base/fresh) so < 100% in the report still reads "got worse".
            ratio = lbase / lfresh
            margin = margins.margin(bline, lmetric)
            row = {"name": name, "metric": lmetric, "base": lbase,
                   "fresh": lfresh, "ratio": ratio, "margin": margin}
            compared.append(row)
            if lfresh > lbase * (1.0 + margin):
                regressions.append(row)

    if not quiet:
        for name, why in skipped:
            print(f"  skip  {name}  [{why}]")
        for row in compared:
            flag = "REGRESSION" if row in regressions else "ok"
            print(f"  {flag:>10}  {row['name']}  {row['metric']}: "
                  f"{row['base']:.1f} -> {row['fresh']:.1f} "
                  f"({row['ratio'] * 100.0:.1f}%, margin "
                  f"{row['margin'] * 100.0:.0f}%)")
    return regressions, compared


def scaling_gate(lines, margins):
    """Single-snapshot parallel-scaling check. Groups lines differing only in
    "threads"; within each group the highest-thread completed cell must not
    be slower than the lowest-thread one on any SCALING_METRICS metric,
    beyond the metric's noise margin. Returns (failures, checked) counts."""
    groups = {}
    for line in lines:
        t = line.get("threads")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            continue
        key = tuple(sorted(
            [(k, v) for k, v in line.items() if isinstance(v, str)] +
            [(k, line[k]) for k in SWEEP_FIELDS
             if k != "threads" and k in line
             and not isinstance(line[k], str)]))
        groups.setdefault(key, {}).setdefault(t, line)

    failures = checked = 0
    for key, by_t in sorted(groups.items()):
        if len(by_t) < 2:
            continue
        lo_t, hi_t = min(by_t), max(by_t)
        lo, hi = by_t[lo_t], by_t[hi_t]
        name = " ".join(f"{k}={v}" for k, v in key)
        if lo.get("partial") or hi.get("partial"):
            print(f"  skip  {name}  [partial (budget-clipped) cell]")
            continue
        for metric in SCALING_METRICS:
            lval, hval = lo.get(metric), hi.get(metric)
            if not all(isinstance(v, (int, float)) and v > 0
                       for v in (lval, hval)):
                continue
            checked += 1
            margin = margins.margin(hi, metric)
            ok = hval >= lval * (1.0 - margin)
            flag = "ok" if ok else "SCALING FAIL"
            print(f"  {flag:>12}  {name}  {metric}: threads={lo_t:g} "
                  f"{lval:.2f} -> threads={hi_t:g} {hval:.2f} "
                  f"({hval / lval * 100.0:.1f}%, margin {margin * 100.0:.0f}%)")
            if not ok:
                failures += 1
    return failures, checked


def self_test(baseline_path, margins):
    base = load_lines(baseline_path)
    if accounting_violations(base):
        print(f"bench_compare: self-test FAILED: {baseline_path} itself "
              "violates the expiry accounting", file=sys.stderr)
        return 1
    clean_reg, compared = compare(base, copy.deepcopy(base), margins, quiet=True)
    if not compared:
        die(f"--self-test: {baseline_path} has no comparable (non-partial, "
            "throughput-bearing) lines")
    if clean_reg:
        print("bench_compare: self-test FAILED: identical snapshots reported "
              "a regression", file=sys.stderr)
        return 1

    # Inject a synthetic regression just past the margin into the first
    # comparable line and require the gate to trip on exactly that line.
    injected = copy.deepcopy(base)
    victim = None
    for line in injected:
        metric, val = metric_of(line)
        if metric is not None and not line.get("partial"):
            line[metric] = val * (1.0 - margins.margin(line, metric)) * 0.9
            victim = identity(line)
            break
    inj_reg, _ = compare(base, injected, margins, quiet=True)
    if len(inj_reg) != 1:
        print(f"bench_compare: self-test FAILED: injected regression tripped "
              f"{len(inj_reg)} findings (expected 1)", file=sys.stderr)
        return 1

    # Same exercise for the lower-is-better routing counters, when the
    # snapshot carries any: inflate one candidates/update value past the
    # margin and require the gate to trip on exactly that line.
    counter_checked = False
    injected = copy.deepcopy(base)
    for line in injected:
        for lmetric in LOWER_IS_BETTER:
            val = line.get(lmetric)
            if isinstance(val, (int, float)) and val > 0 and not line.get("partial"):
                line[lmetric] = val * (1.0 + margins.margin(line, lmetric)) * 1.1
                counter_checked = True
                break
        if counter_checked:
            break
    if counter_checked:
        inj_reg, _ = compare(base, injected, margins, quiet=True)
        if len(inj_reg) != 1:
            print(f"bench_compare: self-test FAILED: injected counter "
                  f"regression tripped {len(inj_reg)} findings (expected 1)",
                  file=sys.stderr)
            return 1

    # And the expiry-accounting gate, when the snapshot carries windowed
    # cells: break one line's counter sum and require exactly one finding.
    accounting_checked = False
    injected = copy.deepcopy(base)
    for line in injected:
        if all(isinstance(line.get(f), (int, float)) for f in ACCOUNTING_FIELDS):
            line["ingested_edges"] += 1
            accounting_checked = True
            break
    if accounting_checked and len(accounting_violations(injected)) != 1:
        print("bench_compare: self-test FAILED: injected accounting "
              "violation was not detected", file=sys.stderr)
        return 1

    # Calibrated-margin teeth: with a noise file loaded, a 10% regression on
    # a gated metric whose margin is tighter than 10% MUST fail, and such a
    # metric must exist at all — otherwise the "tightened" gate still lets a
    # 10% scheduler regression through and the calibration is pointless.
    tightened_checked = 0
    if margins.path is not None:
        for idx, bline in enumerate(base):
            metric, val = metric_of(bline)
            if metric is None or bline.get("partial"):
                continue
            if margins.margin(bline, metric) >= 0.10:
                continue
            injected = copy.deepcopy(base)
            injected[idx][metric] = val * 0.90
            inj_reg, _ = compare(base, injected, margins, quiet=True)
            if not any(r["metric"] == metric for r in inj_reg):
                print(f"bench_compare: self-test FAILED: 10% regression on "
                      f"{metric} (margin "
                      f"{margins.margin(bline, metric) * 100.0:.0f}%) "
                      "was not detected", file=sys.stderr)
                return 1
            tightened_checked += 1
        if tightened_checked == 0:
            print("bench_compare: self-test FAILED: no comparable metric has "
                  "a calibrated margin below 10% — the noise file does not "
                  "tighten the gate", file=sys.stderr)
            return 1

    print(f"bench_compare: self-test OK: {len(compared)} comparable cells; "
          f"injected regression on [{' '.join(f'{k}={v}' for k, v in victim)}] "
          "was detected"
          + ("; counter-gate regression was detected" if counter_checked else "")
          + ("; accounting violation was detected" if accounting_checked else "")
          + (f"; 10% regressions detected on {tightened_checked} "
             "margin-tightened cells" if tightened_checked else ""))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline",
                        help="committed BENCH_PR*.json snapshot (with "
                             "--newest-baseline / --self-test / "
                             "--scaling-gate: the FRESH snapshot)")
    parser.add_argument("fresh", nargs="?", help="fresh trajectory snapshot")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fallback max tolerated fractional drop for "
                             "metrics without a calibrated margin "
                             "(default 0.25)")
    parser.add_argument("--noise-margins", metavar="FILE",
                        help="committed BENCH_NOISE.json with per-metric "
                             "margins (tools/bench_noise_calibrate.py)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an injected regression")
    parser.add_argument("--scaling-gate", action="store_true",
                        help="single-snapshot check: highest-threads cells "
                             "must not lose to lowest-threads cells")
    parser.add_argument("--newest-baseline", metavar="DIR",
                        help="pick the highest-numbered baseline in DIR; "
                             "pass cleanly when none exists")
    parser.add_argument("--baseline-prefix", default="BENCH_PR",
                        help="baseline filename prefix for --newest-baseline "
                             "(default BENCH_PR; the runner-native snapshots "
                             "use BENCH_RUNNER_PR)")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")
    margins = Margins(args.threshold, args.noise_margins)

    if args.self_test:
        sys.exit(self_test(args.baseline, margins))

    if args.scaling_gate:
        if args.fresh is not None:
            parser.error("with --scaling-gate, pass only FRESH.json")
        lines = load_lines(args.baseline)
        print(f"bench_compare: scaling gate on {args.baseline}")
        failures, checked = scaling_gate(lines, margins)
        if checked == 0:
            print("bench_compare: warning: no thread-sweep pairs to check — "
                  "scaling gate passes vacuously", file=sys.stderr)
        if failures:
            print(f"bench_compare: FAIL: {failures}/{checked} scaling cells "
                  "got slower with more threads")
            sys.exit(1)
        print(f"bench_compare: OK: {checked} scaling cells hold")
        sys.exit(0)

    if args.newest_baseline is not None:
        if args.fresh is not None:
            parser.error("with --newest-baseline, pass only FRESH.json")
        args.fresh = args.baseline
        baseline = newest_baseline(args.newest_baseline, args.baseline_prefix)
        if baseline is None:
            print(f"bench_compare: no committed {args.baseline_prefix}*.json "
                  f"baseline in {args.newest_baseline} — nothing to compare, "
                  "gate passes")
            sys.exit(0)
        args.baseline = str(baseline)
    if args.fresh is None:
        parser.error("FRESH.json is required unless --self-test or "
                     "--scaling-gate is given")

    print(f"bench_compare: {args.baseline} vs {args.fresh} "
          f"(fallback threshold {args.threshold * 100.0:.0f}%"
          + (f", margins from {args.noise_margins}" if args.noise_margins
             else "") + ")")
    base_lines, fresh_lines = load_lines(args.baseline), load_lines(args.fresh)
    for path, lines in ((args.baseline, base_lines), (args.fresh, fresh_lines)):
        violations = accounting_violations(lines)
        for v in violations:
            print(f"bench_compare: ACCOUNTING VIOLATION in {path}: {v}",
                  file=sys.stderr)
        if violations and path == args.fresh:
            print("bench_compare: FAIL: expiry accounting violated "
                  f"({len(violations)} lines)")
            sys.exit(1)
    regressions, compared = compare(base_lines, fresh_lines, margins)
    if not compared:
        print("bench_compare: warning: no comparable cells (disjoint bench "
              "sets or all partial) — gate passes vacuously", file=sys.stderr)
    if regressions:
        print(f"bench_compare: FAIL: {len(regressions)}/{len(compared)} "
              "completed cells regressed past their margins")
        sys.exit(1)
    print(f"bench_compare: OK: {len(compared)} completed cells within budget")
    sys.exit(0)


if __name__ == "__main__":
    main()
