#!/usr/bin/env python3
"""Bench-regression gate: diff two BENCH_*.json trajectory snapshots.

Usage:
  tools/bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
  tools/bench_compare.py --newest-baseline DIR FRESH.json [--threshold 0.25]
  tools/bench_compare.py --self-test BASELINE.json [--threshold 0.25]

--newest-baseline picks the committed BENCH_PR<N>.json with the highest N in
DIR as the baseline. When DIR holds no baseline at all (the first PR of a
repo, or a checkout without committed snapshots) the gate passes cleanly
with an explanatory message instead of erroring — "no baseline yet" is not a
regression.

Trajectory files are the {"generated_by": ..., "lines": [...]} documents
written by tools/bench_smoke.sh (one dict per BENCH_JSON line). Lines are
paired across the two files by their identity fields — every string-valued
field (bench, dataset, engine, name, ...) plus the numeric sweep coordinate
"overlap" when present. For each pair the first throughput metric present in
METRICS is compared; the gate fails when the fresh value drops more than
--threshold below the baseline.

Completed cells only: a cell that hit its time budget measures an arbitrary
stream prefix, and for engines whose per-update cost grows with the graph a
partial cell's updates/s is not comparable across runs (a *faster* build
processes a longer, more expensive prefix and can report a lower average).
Any line flagged "partial" on either side is therefore skipped, as are lines
present on only one side (new or retired benches).

--self-test verifies the gate end-to-end against a single snapshot: the
snapshot must pass against itself, and an injected synthetic regression
(one comparable metric scaled below the threshold) must make it fail.

Exit status: 0 ok, 1 regression detected, 2 usage or parse error.
"""

import argparse
import copy
import json
import re
import sys
from pathlib import Path

# Throughput metrics, in priority order; higher is better.
METRICS = ("updates_per_sec", "items_per_sec", "max_items_per_sec")

# Routing-selectivity counters; *lower* is better. Gated independently of
# throughput: a routed cell whose candidates/update starts scaling with
# |QDB| again is a routing regression even when raw updates/s still passes
# (e.g. a faster join masking a broken posting list).
LOWER_IS_BETTER = ("candidates_per_update",)

# Temporal accounting fields (the fig16 windowed cells): any line carrying
# all three must satisfy ingested == live + expired + removed.
ACCOUNTING_FIELDS = ("ingested_edges", "live_edges", "expired_edges")


def die(msg):
    """Usage / parse error: the documented exit status 2, never a silent 1."""
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load_lines(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot load {path}: {e}")
    if not isinstance(doc, dict):
        die(f"{path} is not a JSON object "
            "(expected a tools/bench_smoke.sh trajectory snapshot)")
    lines = doc.get("lines")
    if not isinstance(lines, list):
        die(f"{path} has no 'lines' array "
            "(expected a tools/bench_smoke.sh trajectory snapshot)")
    if not all(isinstance(line, dict) for line in lines):
        die(f"{path}: every entry of 'lines' must be an object")
    return lines


def newest_baseline(dir_path):
    """Highest-numbered committed BENCH_PR<N>.json in `dir_path`, or None."""
    try:
        candidates = list(Path(dir_path).glob("BENCH_PR*.json"))
    except OSError as e:
        die(f"cannot scan {dir_path}: {e}")
    best, best_n = None, -1
    for path in candidates:
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = path, int(m.group(1))
    return best


def identity(line):
    """Stable pairing key: the string-valued fields + sweep coordinates."""
    key = [(k, v) for k, v in line.items() if isinstance(v, str)]
    if "overlap" in line:
        key.append(("overlap", line["overlap"]))
    return tuple(sorted(key))


def accounting_violations(lines):
    """Expiry-accounting gate: a windowed cell whose counters do not add up
    (`ingested != live + expired + removed`) indicates a WindowManager that
    leaked or double-retired edges — a correctness failure, not a perf delta,
    so it fails the gate regardless of thresholds or partial flags."""
    bad = []
    for line in lines:
        if not all(isinstance(line.get(f), (int, float))
                   for f in ACCOUNTING_FIELDS):
            continue
        expected = (line["live_edges"] + line["expired_edges"] +
                    line.get("removed_edges", 0))
        if line["ingested_edges"] != expected:
            name = " ".join(f"{k}={v}" for k, v in identity(line))
            bad.append(f"{name}: ingested_edges={line['ingested_edges']} != "
                       f"live+expired+removed={expected}")
    return bad


def metric_of(line):
    for m in METRICS:
        v = line.get(m)
        if isinstance(v, (int, float)) and v > 0:
            return m, float(v)
    return None, None


def index_by_identity(lines, path):
    out = {}
    for line in lines:
        key = identity(line)
        if key in out:
            print(f"bench_compare: warning: duplicate line identity in {path}: "
                  f"{dict(key)} (keeping the first)", file=sys.stderr)
            continue
        out[key] = line
    return out


def compare(base_lines, fresh_lines, threshold, quiet=False):
    """Returns (regressions, compared): lists of result-row dicts."""
    base = index_by_identity(base_lines, "baseline")
    fresh = index_by_identity(fresh_lines, "fresh")
    regressions, compared, skipped = [], [], []

    for key, bline in base.items():
        fline = fresh.get(key)
        name = " ".join(f"{k}={v}" for k, v in key)
        if fline is None:
            skipped.append((name, "missing from fresh run"))
            continue
        if bline.get("partial") or fline.get("partial"):
            skipped.append((name, "partial (budget-clipped) cell"))
            continue
        metric, bval = metric_of(bline)
        if metric is not None:
            fval = fline.get(metric)
            if not isinstance(fval, (int, float)) or fval <= 0:
                skipped.append((name, f"fresh run lacks {metric}"))
            else:
                ratio = fval / bval
                row = {"name": name, "metric": metric, "base": bval,
                       "fresh": fval, "ratio": ratio}
                compared.append(row)
                if ratio < 1.0 - threshold:
                    regressions.append(row)
        for lmetric in LOWER_IS_BETTER:
            lbase = bline.get(lmetric)
            lfresh = fline.get(lmetric)
            if not isinstance(lbase, (int, float)) or lbase <= 0:
                continue
            if not isinstance(lfresh, (int, float)) or lfresh <= 0:
                skipped.append((name, f"fresh run lacks {lmetric}"))
                continue
            # Lower is better: the gate trips when the fresh value grew more
            # than `threshold` above the baseline. `ratio` is inverted
            # (base/fresh) so < 100% in the report still reads "got worse".
            ratio = lbase / lfresh
            row = {"name": name, "metric": lmetric, "base": lbase,
                   "fresh": lfresh, "ratio": ratio}
            compared.append(row)
            if lfresh > lbase * (1.0 + threshold):
                regressions.append(row)

    if not quiet:
        for name, why in skipped:
            print(f"  skip  {name}  [{why}]")
        for row in compared:
            flag = "REGRESSION" if row in regressions else "ok"
            print(f"  {flag:>10}  {row['name']}  {row['metric']}: "
                  f"{row['base']:.1f} -> {row['fresh']:.1f} "
                  f"({row['ratio'] * 100.0:.1f}%)")
    return regressions, compared


def self_test(baseline_path, threshold):
    base = load_lines(baseline_path)
    if accounting_violations(base):
        print(f"bench_compare: self-test FAILED: {baseline_path} itself "
              "violates the expiry accounting", file=sys.stderr)
        return 1
    clean_reg, compared = compare(base, copy.deepcopy(base), threshold, quiet=True)
    if not compared:
        die(f"--self-test: {baseline_path} has no comparable (non-partial, "
            "throughput-bearing) lines")
    if clean_reg:
        print("bench_compare: self-test FAILED: identical snapshots reported "
              "a regression", file=sys.stderr)
        return 1

    # Inject a synthetic regression just past the threshold into the first
    # comparable line and require the gate to trip on exactly that line.
    injected = copy.deepcopy(base)
    victim = None
    for line in injected:
        metric, val = metric_of(line)
        if metric is not None and not line.get("partial"):
            line[metric] = val * (1.0 - threshold) * 0.9
            victim = identity(line)
            break
    inj_reg, _ = compare(base, injected, threshold, quiet=True)
    if len(inj_reg) != 1:
        print(f"bench_compare: self-test FAILED: injected regression tripped "
              f"{len(inj_reg)} findings (expected 1)", file=sys.stderr)
        return 1

    # Same exercise for the lower-is-better routing counters, when the
    # snapshot carries any: inflate one candidates/update value past the
    # threshold and require the gate to trip on exactly that line.
    counter_checked = False
    injected = copy.deepcopy(base)
    for line in injected:
        for lmetric in LOWER_IS_BETTER:
            val = line.get(lmetric)
            if isinstance(val, (int, float)) and val > 0 and not line.get("partial"):
                line[lmetric] = val * (1.0 + threshold) * 1.1
                counter_checked = True
                break
        if counter_checked:
            break
    if counter_checked:
        inj_reg, _ = compare(base, injected, threshold, quiet=True)
        if len(inj_reg) != 1:
            print(f"bench_compare: self-test FAILED: injected counter "
                  f"regression tripped {len(inj_reg)} findings (expected 1)",
                  file=sys.stderr)
            return 1

    # And the expiry-accounting gate, when the snapshot carries windowed
    # cells: break one line's counter sum and require exactly one finding.
    accounting_checked = False
    injected = copy.deepcopy(base)
    for line in injected:
        if all(isinstance(line.get(f), (int, float)) for f in ACCOUNTING_FIELDS):
            line["ingested_edges"] += 1
            accounting_checked = True
            break
    if accounting_checked and len(accounting_violations(injected)) != 1:
        print("bench_compare: self-test FAILED: injected accounting "
              "violation was not detected", file=sys.stderr)
        return 1

    print(f"bench_compare: self-test OK: {len(compared)} comparable cells; "
          f"injected regression on [{' '.join(f'{k}={v}' for k, v in victim)}] "
          "was detected"
          + ("; counter-gate regression was detected" if counter_checked else "")
          + ("; accounting violation was detected" if accounting_checked else ""))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline",
                        help="committed BENCH_PR*.json snapshot (with "
                             "--newest-baseline: the FRESH snapshot)")
    parser.add_argument("fresh", nargs="?", help="fresh bench_smoke.sh snapshot")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional drop (default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an injected regression")
    parser.add_argument("--newest-baseline", metavar="DIR",
                        help="pick the highest-numbered BENCH_PR*.json in DIR "
                             "as the baseline; pass cleanly when none exists")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 1.0:
        parser.error("--threshold must be in (0, 1)")

    if args.self_test:
        sys.exit(self_test(args.baseline, args.threshold))

    if args.newest_baseline is not None:
        if args.fresh is not None:
            parser.error("with --newest-baseline, pass only FRESH.json")
        args.fresh = args.baseline
        baseline = newest_baseline(args.newest_baseline)
        if baseline is None:
            print(f"bench_compare: no committed BENCH_PR*.json baseline in "
                  f"{args.newest_baseline} — nothing to compare, gate passes")
            sys.exit(0)
        args.baseline = str(baseline)
    if args.fresh is None:
        parser.error("FRESH.json is required unless --self-test is given")

    print(f"bench_compare: {args.baseline} vs {args.fresh} "
          f"(threshold {args.threshold * 100.0:.0f}%)")
    base_lines, fresh_lines = load_lines(args.baseline), load_lines(args.fresh)
    for path, lines in ((args.baseline, base_lines), (args.fresh, fresh_lines)):
        violations = accounting_violations(lines)
        for v in violations:
            print(f"bench_compare: ACCOUNTING VIOLATION in {path}: {v}",
                  file=sys.stderr)
        if violations and path == args.fresh:
            print("bench_compare: FAIL: expiry accounting violated "
                  f"({len(violations)} lines)")
            sys.exit(1)
    regressions, compared = compare(base_lines, fresh_lines, args.threshold)
    if not compared:
        print("bench_compare: warning: no comparable cells (disjoint bench "
              "sets or all partial) — gate passes vacuously", file=sys.stderr)
    if regressions:
        print(f"bench_compare: FAIL: {len(regressions)}/{len(compared)} "
              f"completed cells regressed more than "
              f"{args.threshold * 100.0:.0f}%")
        sys.exit(1)
    print(f"bench_compare: OK: {len(compared)} completed cells within budget")
    sys.exit(0)


if __name__ == "__main__":
    main()
