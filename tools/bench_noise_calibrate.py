#!/usr/bin/env python3
"""Calibrate per-metric bench noise margins from repeated runs.

Usage:
  tools/bench_noise_calibrate.py --out BENCH_NOISE.json RUN1.json RUN2.json ...

Input: two or more trajectory snapshots ({"generated_by", "lines": [...]} as
written by tools/bench_smoke.sh / tools/bench_runner.sh) from REPEATED runs
of the same build on the same machine. The runs' spread is, by definition,
pure noise — no code changed — so a regression gate tighter than that spread
would flap, and one much looser (the old flat 25%) waves real regressions
through.

For every cell present and completed (non-partial) in at least two runs, the
relative spread of each gated metric is measured as (max - min) / max. The
margin for a (bench, metric) pair is

    clamp(2 * max_spread_over_cells, 0.05, 0.22)

— double the worst observed same-build spread (headroom for cross-machine
variance between the committing run and CI's runner), floored at 5% (below
which timer jitter dominates) and capped at 22% (always at least slightly
tighter than the old flat 25% gate). The output's "benches" section carries
these per-bench margins; "metrics" carries the loosest margin seen per
metric (the fallback for benches that did not exist at calibration time);
"default" stays 0.25 for metrics never calibrated at all.

The output feeds tools/bench_compare.py --noise-margins. Recalibrate (and
recommit BENCH_NOISE.json) when cells are added or the bench sizes change:

  for i in 1 2 3 4 5; do tools/bench_smoke.sh build /tmp/noise_$i.json; done
  tools/bench_noise_calibrate.py --out BENCH_NOISE.json /tmp/noise_*.json
"""

import argparse
import json
import sys

from bench_compare import (METRICS, LOWER_IS_BETTER, identity, load_lines,
                           metric_of)

MARGIN_FLOOR = 0.05
MARGIN_CAP = 0.22
UNCALIBRATED_DEFAULT = 0.25


def gated_metrics(line):
    """The metrics bench_compare actually gates on this line: the first
    present METRICS entry plus every lower-is-better counter it carries."""
    out = []
    metric, _ = metric_of(line)
    if metric is not None:
        out.append(metric)
    for lmetric in LOWER_IS_BETTER:
        v = line.get(lmetric)
        if isinstance(v, (int, float)) and v > 0:
            out.append(lmetric)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--out", required=True, metavar="BENCH_NOISE.json")
    parser.add_argument("runs", nargs="+",
                        help="two or more repeated trajectory snapshots")
    args = parser.parse_args()
    if len(args.runs) < 2:
        parser.error("need at least two repeated runs to measure spread")

    # (bench, metric) -> {identity -> [values across runs]}
    samples = {}
    for path in args.runs:
        for line in load_lines(path):
            if line.get("partial"):
                continue
            bench = line.get("bench")
            if not isinstance(bench, str):
                continue
            for metric in gated_metrics(line):
                v = float(line[metric])
                samples.setdefault((bench, metric), {}) \
                       .setdefault(identity(line), []).append(v)

    benches, metrics = {}, {}
    cells_used = 0
    for (bench, metric), by_cell in sorted(samples.items()):
        spread = 0.0
        seen = False
        for values in by_cell.values():
            if len(values) < 2:
                continue  # cell not stable across runs; nothing to measure
            seen = True
            cells_used += 1
            spread = max(spread, (max(values) - min(values)) / max(values))
        if not seen:
            continue
        margin = min(max(2.0 * spread, MARGIN_FLOOR), MARGIN_CAP)
        benches.setdefault(bench, {})[metric] = round(margin, 4)
        metrics[metric] = max(metrics.get(metric, 0.0), round(margin, 4))

    if not benches:
        print("bench_noise_calibrate: no cell completed in two or more runs — "
              "nothing to calibrate", file=sys.stderr)
        sys.exit(2)

    doc = {
        "generated_by": "tools/bench_noise_calibrate.py",
        "runs": len(args.runs),
        "cells_measured": cells_used,
        "default": UNCALIBRATED_DEFAULT,
        "metrics": metrics,
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=False)
        f.write("\n")
    print(f"bench_noise_calibrate: {cells_used} cells across {len(args.runs)} "
          f"runs -> {args.out} ({sum(len(v) for v in benches.values())} "
          "per-bench margins)")


if __name__ == "__main__":
    main()
