#!/usr/bin/env bash
# Runner-native scheduler benches: runs bench/micro_sched across a thread
# sweep and collects its BENCH_JSON lines into one trajectory snapshot.
#
#   tools/bench_runner.sh [build_dir] [out.json] [thread_list]
#
# Defaults: build dir `build`, output `<build_dir>/BENCH_RUNNER.json`,
# threads `1 2 4`. The output is the same {"generated_by", "lines": [...]}
# document bench_smoke.sh writes, so tools/bench_compare.py consumes it
# unchanged — including the scaling gate:
#
#   python3 tools/bench_compare.py --scaling-gate build/BENCH_RUNNER.json
#
# fails when any completed threads=4 cell is slower than its threads=1
# counterpart (beyond the per-metric noise margin).
#
# The point of this file existing apart from bench_smoke.sh: these cells are
# only meaningful on a MULTI-CORE machine. The dev container is 1-CPU, where
# threads>1 just time-slices and speedup_vs_static sits at ~1.0; CI's
# bench-multicore job runs this script on the runner and uploads the snapshot
# as the runner-native baseline (commit it as tools/BENCH_RUNNER_PR<N>.json
# to arm the regression diff — see tools/bench_compare.py --baseline-prefix).

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-$BUILD_DIR/BENCH_RUNNER.json}"
THREADS="${3:-1 2 4}"
BENCH_LINES_TMP="$(mktemp)"
trap 'rm -f "$BENCH_LINES_TMP"' EXIT

BIN="$BUILD_DIR/micro_sched"
if [[ ! -x "$BIN" ]]; then
  echo "bench_runner: $BIN not built (cmake --build $BUILD_DIR --target micro_sched)" >&2
  exit 1
fi

for t in $THREADS; do
  echo "bench_runner: micro_sched --threads=$t" >&2
  "$BIN" --threads=$t --cell-budget-sec=2 \
    | grep '^BENCH_JSON ' | tee -a "$BENCH_LINES_TMP" \
    || { echo "bench_runner: micro_sched --threads=$t failed" >&2; exit 1; }
done

python3 - "$OUT" "$BENCH_LINES_TMP" <<'EOF'
import json, sys
out, lines_path = sys.argv[1], sys.argv[2]
lines = []
with open(lines_path) as f:
    for line in f:
        line = line.strip()
        if line.startswith("BENCH_JSON "):
            lines.append(json.loads(line[len("BENCH_JSON "):]))
with open(out, "w") as f:
    json.dump({"generated_by": "tools/bench_runner.sh", "lines": lines}, f, indent=1)
    f.write("\n")
EOF

echo "bench_runner: snapshot written to $OUT" >&2
