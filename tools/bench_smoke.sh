#!/usr/bin/env bash
# Bench smoke: runs the micro benches at tiny sizes and emits one
# BENCH_*.json-compatible line per suite for trajectory tracking.
#
#   tools/bench_smoke.sh [build_dir] [trajectory_out]
#
# Output: a `BENCH_JSON {...}` line per suite on stdout (same format the
# figure benches emit via bench::BenchLine), plus a BENCH_SMOKE.json file in
# the build dir aggregating the google-benchmark JSON reports. The query-
# churn cell (fig15_churn, tiny budget) contributes one line per engine with
# indexing / removal / answering split out.
#
# The BENCH_JSON lines are also collected into `trajectory_out` (default:
# BENCH_TRAJECTORY.json inside the build dir, so plain runs never clobber the
# committed BENCH_PR*.json baselines). To refresh the committed per-PR
# snapshot after perf-relevant changes, pass the target explicitly:
#
#   tools/bench_smoke.sh build BENCH_PR5.json
#
# CI's bench-regression gate diffs a fresh trajectory against the newest
# committed baseline via tools/bench_compare.py (completed cells only).
#
# On 1-CPU containers, measure A/B pairs by alternating runs and taking the
# min per configuration (see DESIGN.md §7 for the protocol); this script is
# the smoke pass, not the measurement pass.

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
TRAJECTORY_OUT="${2:-$BUILD_DIR/BENCH_TRAJECTORY.json}"
BENCH_LINES_TMP="$(mktemp)"
trap 'rm -f "$BENCH_LINES_TMP"' EXIT

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "bench_smoke: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi

SUITES=(micro_flatmap micro_join micro_trie micro_ingest micro_server)
OUT="$BUILD_DIR/BENCH_SMOKE.json"
REPORTS=()

for suite in "${SUITES[@]}"; do
  bin="$BUILD_DIR/$suite"
  if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: $suite not built (google-benchmark missing?); skipping" >&2
    continue
  fi
  json="$BUILD_DIR/BENCH_${suite}.json"
  # Tiny sizes: min_time far below default so the whole smoke stays seconds.
  "$bin" --benchmark_min_time=0.01 \
         --benchmark_format=json \
         --benchmark_out="$json" \
         --benchmark_out_format=json >/dev/null 2>&1 || {
    echo "bench_smoke: $suite failed" >&2
    exit 1
  }
  REPORTS+=("$json")

  # One compact BENCH_JSON line per suite: benchmark count + total cpu time,
  # enough for a trajectory tracker to notice a build that got slower.
  python3 - "$suite" "$json" <<'EOF' | tee -a "$BENCH_LINES_TMP"
import json, sys
suite, path = sys.argv[1], sys.argv[2]
with open(path) as f:
    report = json.load(f)
benches = [b for b in report.get("benchmarks", []) if b.get("run_type") != "aggregate"]
total_cpu_ns = sum(b.get("cpu_time", 0.0) for b in benches)
items = [b["items_per_second"] for b in benches if "items_per_second" in b]
line = {
    "bench": f"smoke_{suite}",
    "benchmarks": len(benches),
    "total_cpu_ns": round(total_cpu_ns, 1),
    "max_items_per_sec": round(max(items), 1) if items else 0,
}
print("BENCH_JSON " + json.dumps(line, separators=(",", ":")))
# The window-delta kernel A/B pairs get individual lines: the Delta-vs-
# Looped items/s ratio is the batching win the trajectory tracks.
for b in benches:
    if "Window" not in b.get("name", ""):
        continue
    line = {
        "bench": f"smoke_{suite}_kernel",
        "name": b["name"],
        "items_per_sec": round(b.get("items_per_second", 0.0), 1),
    }
    print("BENCH_JSON " + json.dumps(line, separators=(",", ":")))
EOF
done

# Query-churn smoke: the dynamic-QDB cell (RemoveQuery + shared-view GC),
# tiny per-engine budget so the whole smoke stays seconds. Its BENCH_JSON
# lines (one per engine: updates/s, add/remove ms/query, end memory) join
# the trajectory snapshot.
if [[ -x "$BUILD_DIR/fig15_churn" ]]; then
  "$BUILD_DIR/fig15_churn" --budget-sec=2 --cell-budget-sec=2 \
    | grep '^BENCH_JSON ' | tee -a "$BENCH_LINES_TMP" \
    || { echo "bench_smoke: fig15_churn failed" >&2; exit 1; }
else
  echo "bench_smoke: fig15_churn not built; skipping churn line" >&2
fi

# High-overlap smoke: the fig12e sweep under batched execution, where the
# shared window finalization (DESIGN.md §9) collapses per-query final-join
# passes into per-signature passes. One line per (overlap, engine) with
# updates/s + the final_join_passes / shared_finalize_groups split; cells
# that blow the tiny budget are flagged partial and excluded from the CI
# regression gate (a partial cell's updates/s measures an arbitrary prefix).
if [[ -x "$BUILD_DIR/fig12e_snb_overlap" ]]; then
  "$BUILD_DIR/fig12e_snb_overlap" --cell-budget-sec=2 --batch=64 \
    | grep '^BENCH_JSON ' | tee -a "$BENCH_LINES_TMP" \
    || { echo "bench_smoke: fig12e_snb_overlap failed" >&2; exit 1; }
else
  echo "bench_smoke: fig12e_snb_overlap not built; skipping overlap lines" >&2
fi

# Query-DB scaling smoke: one tenant-duplication cell (routed vs legacy
# linear dispatch A/B, DESIGN.md §12) small enough to complete inside the
# tiny budget. Its BENCH_JSON lines carry updates/s for the throughput gate
# and candidates_per_update for the routing-selectivity gate (a routed cell
# whose candidate count starts scaling with |QDB| again fails the trajectory
# diff even when throughput hides it).
if [[ -x "$BUILD_DIR/fig_scale_qdb" ]]; then
  "$BUILD_DIR/fig_scale_qdb" --tenants=20 --cell-budget-sec=2 --batch=64 \
    | grep '^BENCH_JSON ' | tee -a "$BENCH_LINES_TMP" \
    || { echo "bench_smoke: fig_scale_qdb failed" >&2; exit 1; }
else
  echo "bench_smoke: fig_scale_qdb not built; skipping scale lines" >&2
fi

# Sliding-window smoke: the two temporal cells (taxi 1-hour window,
# fraud rolling per-label TTLs + TTL'd queries). Their BENCH_JSON lines
# carry the expiry accounting (ingested_edges / expired_edges / live_edges)
# that tools/bench_compare.py gates with `ingested == live + expired +
# removed` — the benches themselves abort on a violation, so a line that
# made it here already passed once.
for wbench in fig16a_taxi_window fig16b_fraud_window; do
  if [[ -x "$BUILD_DIR/$wbench" ]]; then
    "$BUILD_DIR/$wbench" --budget-sec=2 --cell-budget-sec=2 \
      | grep '^BENCH_JSON ' | tee -a "$BENCH_LINES_TMP" \
      || { echo "bench_smoke: $wbench failed" >&2; exit 1; }
  else
    echo "bench_smoke: $wbench not built; skipping window lines" >&2
  fi
done

# Aggregate the per-suite reports into one *valid* JSON document (an array
# of google-benchmark reports), so consumers can json.load() the artifact.
python3 - "$OUT" "${REPORTS[@]}" <<'EOF'
import json, sys
out, paths = sys.argv[1], sys.argv[2:]
reports = []
for path in paths:
    with open(path) as f:
        reports.append(json.load(f))
with open(out, "w") as f:
    json.dump(reports, f, indent=1)
EOF

echo "bench_smoke: aggregated google-benchmark reports in $OUT" >&2

# Collect the BENCH_JSON lines into the committed trajectory snapshot: one
# valid JSON document {"generated_by", "lines": [...]} so consumers can
# json.load() it and diff per-PR numbers.
python3 - "$TRAJECTORY_OUT" "$BENCH_LINES_TMP" <<'EOF'
import json, sys
out, lines_path = sys.argv[1], sys.argv[2]
lines = []
with open(lines_path) as f:
    for line in f:
        line = line.strip()
        if line.startswith("BENCH_JSON "):
            lines.append(json.loads(line[len("BENCH_JSON "):]))
with open(out, "w") as f:
    json.dump({"generated_by": "tools/bench_smoke.sh", "lines": lines}, f, indent=1)
    f.write("\n")
EOF

echo "bench_smoke: trajectory snapshot written to $TRAJECTORY_OUT" >&2
