// gstream_cli — run a continuous-query file against a generated or custom
// update stream and print notifications. The "try it on your own queries"
// entry point of the library.
//
// Usage:
//   gstream_cli --queries=FILE [--dataset=snb|taxi|bio] [--updates=N]
//               [--stream=FILE.csv] [--events=FILE.gse] [--gsb=FILE.gsb]
//               [--engine=tric+|tric|inv|inv+|inc|inc+|graphdb]
//               [--seed=N] [--verbose]
//               [--batch=N] [--threads=N] [--no-shared-finalize]
//               [--no-route-index]
//
// File replay (--gsb, see DESIGN.md §10): streams a checksummed binary
// `.gsb` file (written by gstream_encode) through the fault-tolerant ingest
// pipeline instead of an in-memory stream. Pipeline flags:
//
//   --readers=N           decode threads (default 1)
//   --ring=N              ring capacity in batches (default 8)
//   --overload=block|shed|fail-fast   full-ring policy (default block)
//   --on-corrupt=skip|fail            corrupt-block policy (default skip)
//   --stall-us=N          sleep N us per applied window (overload testing)
//   --snapshot=FILE       snapshot path (with --snapshot-every / --recover)
//   --snapshot-every=N    write a snapshot every N finalized windows
//   --recover             resume from --snapshot instead of starting fresh
//   --window-policy=none|time|count|label-ttl   sliding-window expiry policy
//   --window-width=N      window width / count / default TTL (event-time
//                         units from the .gsb timestamp column; recovery must
//                         use the same window flags as the original run)
//
// Fault injection (deterministic, for the CI smoke leg and local testing;
// loads the file into memory and corrupts the image before replay):
//
//   --fault-seed=N          RNG seed (default 1)
//   --fault-flips=N         flip N random bytes after the header
//   --fault-flip-records=N  flip N random bytes in record payloads only
//                           (dictionary corruption is fatal by design)
//   --fault-truncate=N      drop the trailing N bytes
//   --fault-dup             duplicate a random block
//   --fault-swap            swap two adjacent blocks
//
// --batch=N feeds the engine windows of N updates through ApplyBatch (the
// sharded batch path; results are identical to per-update execution), and
// --threads=N fans footprint-independent shards across N threads.
// --no-shared-finalize turns off cross-query shared window finalization
// (DESIGN.md §9) so batched windows run one final-join pass per (query,
// window) instead of one per signature group — results are identical; the
// flag exists for A/B-ing the final-join pass counters below.
// --no-route-index turns off the shared query routing index (DESIGN.md §12)
// so each update is dispatched through the legacy linear scan over the
// registered queries — results are identical; the flag exists for A/B-ing
// the routed-candidate / prefilter-reject counters below.
//
// The query file holds one pattern per line (see query/parser.h for the
// grammar); blank lines and lines starting with '#' are skipped. Example:
//
//   # who checks in where a friend checked in?
//   (?a)-[knows]->(?b); (?a)-[checksIn]->(?p); (?b)-[checksIn]->(?p)
//   (?someone)-[posted]->(post_17)
//
// With --stream=FILE.csv the generated dataset is replaced by your own edge
// stream: one "src,label,dst" triple per line (a leading '-' on a line
// marks a deletion, e.g. "-alice,knows,bob"); '#' comments allowed.
//
// With --events=FILE the run becomes a *mixed* update/query-event stream
// (the dynamic query database): edge lines as in --stream, interleaved with
// query lifecycle events —
//
//   alice,knows,bob            # edge insertion
//   -alice,knows,bob           # edge deletion
//   +q 7 (?a)-[knows]->(?b)    # register continuous query 7 (id must be fresh)
//   -q 7                       # remove query 7 (id must be registered)
//
// Queries from --queries (ids 0..N-1) are registered up front; event-file
// ids must not collide with them. The run reports indexing, removal, and
// answering time separately. --events replaces --dataset/--stream and makes
// --queries optional.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "engine/driver.h"
#include "engine/engine.h"
#include "ingest/csv_stream.h"
#include "ingest/fault_injector.h"
#include "ingest/pipeline.h"
#include "query/parser.h"
#include "workload/bio.h"
#include "workload/snb.h"
#include "workload/taxi.h"

using namespace gstream;

namespace {

EngineKind ParseEngine(const std::string& name) {
  if (name == "tric") return EngineKind::kTric;
  if (name == "tric+") return EngineKind::kTricPlus;
  if (name == "inv") return EngineKind::kInv;
  if (name == "inv+") return EngineKind::kInvPlus;
  if (name == "inc") return EngineKind::kInc;
  if (name == "inc+") return EngineKind::kIncPlus;
  if (name == "graphdb") return EngineKind::kGraphDb;
  std::fprintf(stderr, "unknown engine '%s', using tric+\n", name.c_str());
  return EngineKind::kTricPlus;
}

workload::Workload MakeDataset(const std::string& name, size_t updates,
                               uint64_t seed) {
  if (name == "taxi") {
    workload::TaxiConfig c;
    c.num_updates = updates;
    c.seed = seed;
    return workload::GenerateTaxi(c);
  }
  if (name == "bio") {
    workload::BioConfig c;
    c.num_updates = updates;
    c.seed = seed;
    return workload::GenerateBio(c);
  }
  workload::SnbConfig c;
  c.num_updates = updates;
  c.seed = seed;
  return workload::GenerateSnb(c);
}

using ingest::LoadCsvStream;
using ingest::ParseEdgeBody;

std::string Trim(const std::string& s) { return ingest::TrimWs(s); }

/// Parses a mixed update/query-event file (see the header comment for the
/// syntax). Query-id freshness/liveness is validated at run time by the
/// engine's checked lifecycle API; this parser validates shapes only.
bool LoadEventFile(const std::string& path, StringInterner& interner,
                   std::vector<StreamEvent>& events) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open event file '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;

    // "+q ID PATTERN" / "-q ID": query lifecycle events.
    if (start + 1 < line.size() && (line[start] == '+' || line[start] == '-') &&
        line[start + 1] == 'q' &&
        (start + 2 == line.size() || line[start + 2] == ' ' || line[start + 2] == '\t')) {
      const bool is_add = line[start] == '+';
      char* end = nullptr;
      const char* id_begin = line.c_str() + start + 2;
      const unsigned long long id = std::strtoull(id_begin, &end, 10);
      if (end == id_begin) {
        std::fprintf(stderr, "%s:%zu: expected '%cq <id>%s'\n", path.c_str(), lineno,
                     is_add ? '+' : '-', is_add ? " <pattern>" : "");
        return false;
      }
      const QueryId qid = static_cast<QueryId>(id);
      if (!is_add) {
        events.push_back(StreamEvent::Remove(qid));
        continue;
      }
      const std::string pattern_text = Trim(line.substr(end - line.c_str()));
      if (pattern_text.empty()) {
        std::fprintf(stderr, "%s:%zu: '+q %llu' needs a pattern\n", path.c_str(),
                     lineno, id);
        return false;
      }
      ParseResult parsed = ParsePattern(pattern_text, interner);
      if (!parsed.ok) {
        std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineno,
                     parsed.error.c_str());
        return false;
      }
      events.push_back(StreamEvent::Add(qid, std::move(parsed.pattern)));
      continue;
    }

    // Everything else is an edge line, as in --stream.
    UpdateOp op = UpdateOp::kAdd;
    if (line[start] == '-') {
      op = UpdateOp::kDelete;
      ++start;
    }
    EdgeUpdate u;
    if (!ParseEdgeBody(line, start, op, interner, &u)) {
      std::fprintf(stderr,
                   "%s:%zu: expected 'src,label,dst', '+q <id> <pattern>' or "
                   "'-q <id>'\n",
                   path.c_str(), lineno);
      return false;
    }
    events.push_back(StreamEvent::Update(u));
  }
  return true;
}

/// Registers the query file's patterns into `engine` (ids 0..N-1).
/// Returns the count, -2 when the file cannot be opened, -1 on a parse
/// error (message already printed).
int LoadQueries(const std::string& query_file, StringInterner& interner,
                ContinuousEngine& engine, bool verbose) {
  std::ifstream file(query_file);
  if (!file) {
    std::fprintf(stderr, "cannot open query file '%s'\n", query_file.c_str());
    return -2;
  }
  std::string line;
  size_t lineno = 0;
  QueryId next_qid = 0;
  while (std::getline(file, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    ParseResult parsed = ParsePattern(line, interner);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s:%zu: %s\n", query_file.c_str(), lineno,
                   parsed.error.c_str());
      return -1;
    }
    if (verbose)
      std::printf("query %u: %s\n", next_qid,
                  parsed.pattern.ToString(interner).c_str());
    engine.AddQuery(next_qid++, parsed.pattern);
  }
  return static_cast<int>(next_qid);
}

bool ParseOverload(const std::string& s, ingest::OverloadPolicy* out) {
  if (s == "block") *out = ingest::OverloadPolicy::kBlock;
  else if (s == "shed") *out = ingest::OverloadPolicy::kShed;
  else if (s == "fail-fast") *out = ingest::OverloadPolicy::kFailFast;
  else return false;
  return true;
}

bool ParseCorrupt(const std::string& s, ingest::CorruptPolicy* out) {
  if (s == "skip") *out = ingest::CorruptPolicy::kSkip;
  else if (s == "fail") *out = ingest::CorruptPolicy::kFail;
  else return false;
  return true;
}

/// The `--gsb` file-replay mode: fault-tolerant binary ingest through the
/// decode -> ring -> apply pipeline, with optional fault injection and
/// snapshot/recovery (see the usage comment up top).
int RunGsbMode(const Flags& flags, EngineKind kind, bool shared_finalize,
               bool route_index, size_t batch, int threads, bool verbose) {
  const std::string gsb_file = flags.GetString("gsb", "");
  const std::string query_file = flags.GetString("queries", "");
  if (query_file.empty()) {
    std::fprintf(stderr, "--gsb needs --queries=FILE\n");
    return 2;
  }

  ingest::OverloadPolicy overload = ingest::OverloadPolicy::kBlock;
  if (!ParseOverload(flags.GetString("overload", "block"), &overload)) {
    std::fprintf(stderr, "--overload must be block, shed, or fail-fast\n");
    return 2;
  }
  ingest::CorruptPolicy on_corrupt = ingest::CorruptPolicy::kSkip;
  if (!ParseCorrupt(flags.GetString("on-corrupt", "skip"), &on_corrupt)) {
    std::fprintf(stderr, "--on-corrupt must be skip or fail\n");
    return 2;
  }

  // Source: the file directly, or an in-memory image with injected faults.
  const uint64_t fault_flips =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-flips", 0, 0));
  const uint64_t fault_flip_records =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-flip-records", 0, 0));
  const uint64_t fault_truncate =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-truncate", 0, 0));
  const bool fault_dup = flags.GetBool("fault-dup", false);
  const bool fault_swap = flags.GetBool("fault-swap", false);
  const bool faulted = fault_flips > 0 || fault_flip_records > 0 ||
                       fault_truncate > 0 || fault_dup || fault_swap;

  std::unique_ptr<ingest::ByteSource> src;
  if (faulted) {
    std::ifstream f(gsb_file, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open gsb file '%s'\n", gsb_file.c_str());
      return 1;
    }
    std::vector<uint8_t> image((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    const uint64_t fault_seed =
        static_cast<uint64_t>(flags.GetIntAtLeast("fault-seed", 1, 0));
    ingest::FaultInjector injector(fault_seed);
    if (fault_dup) injector.DuplicateRandomBlock(image);
    if (fault_swap) injector.SwapAdjacentBlocks(image);
    if (fault_flips > 0) injector.FlipBytes(image, fault_flips);
    if (fault_flip_records > 0)
      injector.FlipRecordBytes(image, fault_flip_records);
    if (fault_truncate > 0) injector.Truncate(image, fault_truncate);
    std::printf("fault injection: seed=%llu flips=%llu flip-records=%llu "
                "truncate=%llu dup=%d swap=%d\n",
                static_cast<unsigned long long>(fault_seed),
                static_cast<unsigned long long>(fault_flips),
                static_cast<unsigned long long>(fault_flip_records),
                static_cast<unsigned long long>(fault_truncate), fault_dup,
                fault_swap);
    src = std::make_unique<ingest::MemorySource>(std::move(image));
  } else {
    std::string err;
    auto file_src = ingest::FileSource::Open(gsb_file, &err);
    if (file_src == nullptr) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    src = std::move(file_src);
  }

  ingest::IngestSession session;
  if (!session.Open(*src, on_corrupt)) {
    std::fprintf(stderr, "gsb open failed: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("gsb %s: %llu records, %u dict strings, %zu record blocks\n",
              gsb_file.c_str(),
              static_cast<unsigned long long>(session.header().record_count),
              session.header().dict_count, session.record_block_count());

  auto engine = CreateEngine(kind);
  engine->SetSharedFinalize(shared_finalize);
  engine->SetRouteIndex(route_index);
  // Queries intern against the stream's reconstructed dictionary, so their
  // label ids line up with the record frames'.
  const int num_queries =
      LoadQueries(query_file, session.mutable_interner(), *engine, verbose);
  if (num_queries < 0) return num_queries == -2 ? 2 : 1;
  if (num_queries == 0) {
    std::fprintf(stderr, "no queries in '%s'\n", query_file.c_str());
    return 1;
  }
  std::printf("engine %s: %d continuous queries registered\n",
              engine->name().c_str(), num_queries);

  ingest::IngestOptions opts;
  opts.batch_window = batch;
  opts.batch_threads = threads;
  opts.reader_threads = static_cast<int>(flags.GetPositiveInt("readers", 1));
  opts.ring_capacity = static_cast<size_t>(flags.GetPositiveInt("ring", 8));
  opts.overload = overload;
  opts.on_corrupt = on_corrupt;
  opts.consumer_stall_micros =
      static_cast<int>(flags.GetIntAtLeast("stall-us", 0, 0));
  opts.snapshot_every_windows =
      static_cast<uint64_t>(flags.GetIntAtLeast("snapshot-every", 0, 0));
  opts.snapshot_path = flags.GetString("snapshot", "");
  if (!temporal::ParseWindowPolicy(flags.GetString("window-policy", "none"),
                                   &opts.window.policy)) {
    std::fprintf(stderr,
                 "--window-policy must be none, time, count, or label-ttl\n");
    return 2;
  }
  opts.window.width =
      static_cast<uint64_t>(flags.GetIntAtLeast("window-width", 0, 0));

  uint64_t notifications = 0;
  size_t triggering_updates = 0;
  const ingest::ResultCallback cb = [&](uint64_t idx, const UpdateResult& r) {
    if (r.triggered.empty()) return;
    ++triggering_updates;
    notifications += r.new_embeddings;
    if (verbose) {
      std::printf("update %llu:", static_cast<unsigned long long>(idx));
      for (auto [qid, n] : r.per_query)
        std::printf(" q%u+%llu", qid, static_cast<unsigned long long>(n));
      std::printf("\n");
    }
  };

  ingest::IngestStats stats;
  ingest::SnapshotData snap;
  if (flags.GetBool("recover", false)) {
    const std::string snap_path = flags.GetString("snapshot", "");
    if (snap_path.empty()) {
      std::fprintf(stderr, "--recover needs --snapshot=FILE\n");
      return 2;
    }
    std::string err;
    if (!ingest::ReadSnapshot(snap_path, snap, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    std::printf("recovering from %s: engine=%s offset=%llu windows=%llu\n",
                snap_path.c_str(), snap.engine_name.c_str(),
                static_cast<unsigned long long>(snap.record_offset),
                static_cast<unsigned long long>(snap.windows_finalized));
    stats = ingest::ResumeReplay(*engine, session, snap, opts, cb);
  } else {
    stats = session.Replay(*engine, opts, cb);
  }

  // Machine-greppable counters (the CI fault-injection smoke leg asserts on
  // these), then the human summary in the classic format.
  std::printf("ingest blocks=%llu decoded=%llu crc_mismatches=%llu "
              "blocks_quarantined=%llu records_missing=%llu "
              "snapshots_written=%llu\n",
              static_cast<unsigned long long>(stats.record_blocks),
              static_cast<unsigned long long>(stats.records_decoded),
              static_cast<unsigned long long>(stats.crc_mismatches),
              static_cast<unsigned long long>(stats.blocks_quarantined),
              static_cast<unsigned long long>(stats.records_missing),
              static_cast<unsigned long long>(stats.snapshots_written));
  if (opts.window.enabled())
    std::printf("window policy=%s width=%llu ingested=%llu expired_edges=%llu "
                "expiry_batches=%llu live_edges=%llu watermark=%llu\n",
                temporal::WindowPolicyName(opts.window.policy),
                static_cast<unsigned long long>(opts.window.width),
                static_cast<unsigned long long>(stats.ingested_edges),
                static_cast<unsigned long long>(stats.expired_edges),
                static_cast<unsigned long long>(stats.expiry_batches),
                static_cast<unsigned long long>(stats.live_edges),
                static_cast<unsigned long long>(stats.watermark));
  std::printf("ring pushed=%llu blocked=%llu shed_batches=%llu "
              "shed_records=%llu max_occupancy=%zu\n",
              static_cast<unsigned long long>(stats.ring.batches_pushed),
              static_cast<unsigned long long>(stats.ring.blocked_pushes),
              static_cast<unsigned long long>(stats.ring.batches_shed),
              static_cast<unsigned long long>(stats.ring.records_shed),
              stats.ring.max_occupancy);
  if (verbose) {
    for (const auto& q : stats.quarantine)
      std::printf("quarantined offset=%llu seq=%u: %s\n",
                  static_cast<unsigned long long>(q.offset), q.seq,
                  q.reason.c_str());
  }
  std::printf(
      "%zu updates in %.1f ms (%.4f ms/update); %zu updates triggered, "
      "%llu notifications; %.1f MB engine state%s\n",
      stats.run.updates_applied, stats.run.answer_millis,
      stats.run.MsecPerUpdate(), triggering_updates,
      static_cast<unsigned long long>(notifications),
      static_cast<double>(stats.run.memory_bytes) / (1024.0 * 1024.0),
      stats.run.timed_out ? " [timed out]" : "");
  if (stats.failed) {
    std::fprintf(stderr, "ingest failed: %s\n", stats.error.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::string query_file = flags.GetString("queries", "");
  const std::string events_file = flags.GetString("events", "");
  if (query_file.empty() && events_file.empty()) {
    std::fprintf(stderr,
                 "usage: gstream_cli --queries=FILE [--dataset=snb|taxi|bio] "
                 "[--updates=N] [--events=FILE] [--engine=tric+|...] "
                 "[--seed=N] [--verbose]\n");
    return 2;
  }
  const std::string dataset = flags.GetString("dataset", "snb");
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 20'000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const bool verbose = flags.GetBool("verbose", false);
  // Rejects 0/negative/non-numeric values with a clear error (exit 2).
  const size_t batch = static_cast<size_t>(flags.GetPositiveInt("batch", 1));
  const int threads = static_cast<int>(flags.GetPositiveInt("threads", 1));
  const bool shared_finalize = !flags.GetBool("no-shared-finalize", false);
  const bool route_index = !flags.GetBool("no-route-index", false);
  const EngineKind kind = ParseEngine(flags.GetString("engine", "tric+"));

  // Binary file replay through the fault-tolerant ingest pipeline.
  if (flags.Has("gsb"))
    return RunGsbMode(flags, kind, shared_finalize, route_index, batch,
                      threads, verbose);

  workload::Workload w;
  const std::string stream_file = flags.GetString("stream", "");
  if (!events_file.empty()) {
    // Mixed event mode: the event file is the whole stream.
    w.name = events_file;
    w.interner = std::make_shared<StringInterner>();
    w.stream = UpdateStream(w.interner);
  } else if (!stream_file.empty()) {
    w.name = stream_file;
    w.interner = std::make_shared<StringInterner>();
    w.stream = UpdateStream(w.interner);
    if (!LoadCsvStream(stream_file, *w.interner, w.stream)) return 2;
  } else {
    w = MakeDataset(dataset, updates, seed);
  }

  auto engine = CreateEngine(kind);
  engine->SetSharedFinalize(shared_finalize);
  engine->SetRouteIndex(route_index);
  QueryId next_qid = 0;
  if (!query_file.empty()) {
    const int loaded = LoadQueries(query_file, *w.interner, *engine, verbose);
    if (loaded < 0) return loaded == -2 ? 2 : 1;
    if (loaded == 0) {
      std::fprintf(stderr, "no queries in '%s'\n", query_file.c_str());
      return 1;
    }
    next_qid = static_cast<QueryId>(loaded);
  }

  if (!events_file.empty()) {
    std::vector<StreamEvent> events;
    if (!LoadEventFile(events_file, *w.interner, events)) return 2;

    // Validate lifecycle ids up front (clean CLI errors beat the engine's
    // GS_CHECK abort): adds must be fresh, removals registered.
    std::unordered_set<QueryId> live;
    for (QueryId q = 0; q < next_qid; ++q) live.insert(q);
    size_t num_updates = 0, num_adds = 0, num_removes = 0;
    for (const StreamEvent& ev : events) {
      if (ev.kind == StreamEvent::Kind::kUpdate) {
        ++num_updates;
      } else if (ev.kind == StreamEvent::Kind::kAddQuery) {
        ++num_adds;
        if (!live.insert(ev.qid).second) {
          std::fprintf(stderr, "%s: '+q %u' collides with a registered query id\n",
                       events_file.c_str(), ev.qid);
          return 1;
        }
      } else {
        ++num_removes;
        if (live.erase(ev.qid) == 0) {
          std::fprintf(stderr, "%s: '-q %u' removes an unregistered query id\n",
                       events_file.c_str(), ev.qid);
          return 1;
        }
      }
    }
    if (engine->NumQueries() == 0 && num_adds == 0) {
      std::fprintf(stderr, "no queries registered and none added in '%s'\n",
                   events_file.c_str());
      return 1;
    }
    std::printf("event stream %s: %zu edge updates, %zu query adds, "
                "%zu query removes; %zu queries pre-registered\n",
                events_file.c_str(), num_updates, num_adds, num_removes,
                engine->NumQueries());
    if (batch > 1) {
      std::printf("execution: window-delta batch (window=%zu threads=%d)\n",
                  batch, threads);
    } else {
      std::printf("execution: per-update (batch=1 threads=1)\n");
    }

    RunConfig config;
    config.batch_window = batch;
    config.batch_threads = threads;
    MixedRunStats stats = RunMixedStream(*engine, events, config);
    std::printf(
        "%zu updates in %.1f ms (%.4f ms/update); %zu adds in %.1f ms "
        "(%.4f ms/add); %zu removes in %.1f ms (%.4f ms/remove)\n",
        stats.updates_applied, stats.answer_millis, stats.MsecPerUpdate(),
        stats.queries_added, stats.index_millis, stats.MsecPerAdd(),
        stats.queries_removed, stats.remove_millis, stats.MsecPerRemove());
    std::printf(
        "%llu notifications across %zu satisfied queries; %llu final-join "
        "passes (%llu shared across queries); %llu routed candidates, "
        "%llu prefilter rejects; %.1f MB engine state "
        "(%zu live queries)%s\n",
        static_cast<unsigned long long>(stats.new_embeddings),
        stats.queries_satisfied,
        static_cast<unsigned long long>(engine->final_join_passes()),
        static_cast<unsigned long long>(engine->shared_finalize_groups()),
        static_cast<unsigned long long>(engine->routed_candidates()),
        static_cast<unsigned long long>(engine->prefilter_rejects()),
        static_cast<double>(stats.memory_bytes) / (1024.0 * 1024.0),
        engine->NumQueries(), stats.timed_out ? " [timed out]" : "");
    return 0;
  }

  std::printf("dataset %s: %zu updates, %zu vertices\n", w.name.c_str(),
              w.stream.size(), w.stream.CountVertices(w.stream.size()));
  std::printf("engine %s: %zu continuous queries registered\n",
              engine->name().c_str(), engine->NumQueries());

  // Effective execution configuration, always reported: per-update vs the
  // window-delta batch pipeline, the shard worker count, and whether window
  // finalization is shared across signature-equal queries.
  if (batch > 1) {
    std::printf("execution: window-delta batch (window=%zu threads=%d%s%s)\n",
                batch, threads,
                shared_finalize ? "" : ", shared finalize OFF",
                route_index ? "" : ", route index OFF");
    engine->SetBatchThreads(threads);
  } else {
    std::printf("execution: per-update (batch=1 threads=1)\n");
  }

  WallTimer timer;
  uint64_t notifications = 0;
  size_t triggering_updates = 0;
  const auto report = [&](size_t i, const UpdateResult& r) {
    if (r.triggered.empty()) return;
    ++triggering_updates;
    notifications += r.new_embeddings;
    if (verbose) {
      const EdgeUpdate& u = w.stream[i];
      std::printf("update %zu (%s)-[%s]->(%s):", i,
                  w.interner->Lookup(u.src).c_str(),
                  w.interner->Lookup(u.label).c_str(),
                  w.interner->Lookup(u.dst).c_str());
      for (auto [qid, n] : r.per_query)
        std::printf(" q%u+%llu", qid, static_cast<unsigned long long>(n));
      std::printf("\n");
    }
  };
  if (batch <= 1) {
    for (size_t i = 0; i < w.stream.size(); ++i)
      report(i, engine->ApplyUpdate(w.stream[i]));
  } else {
    const auto& updates = w.stream.updates();
    for (size_t pos = 0; pos < updates.size(); pos += batch) {
      const size_t n = std::min(batch, updates.size() - pos);
      std::vector<UpdateResult> results = engine->ApplyBatch(&updates[pos], n);
      for (size_t k = 0; k < results.size(); ++k) report(pos + k, results[k]);
    }
  }
  const double ms = timer.ElapsedMillis();
  std::printf(
      "%zu updates in %.1f ms (%.4f ms/update); %zu updates triggered, "
      "%llu notifications; %llu final-join passes (%llu shared across "
      "queries); %llu routed candidates, %llu prefilter rejects; "
      "%.1f MB engine state\n",
      w.stream.size(), ms, ms / w.stream.size(), triggering_updates,
      static_cast<unsigned long long>(notifications),
      static_cast<unsigned long long>(engine->final_join_passes()),
      static_cast<unsigned long long>(engine->shared_finalize_groups()),
      static_cast<unsigned long long>(engine->routed_candidates()),
      static_cast<unsigned long long>(engine->prefilter_rejects()),
      static_cast<double>(engine->MemoryBytes()) / (1024.0 * 1024.0));
  return 0;
}
