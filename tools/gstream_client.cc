// gstream_client — command-line client for gstream_server: registers query
// subscriptions, streams a CSV edge file (or a built-in generated workload)
// through the wire protocol, waits until the server acks every record as
// applied, and prints greppable counters. The --fault-* flags inject
// network-side faults (torn/duplicated/reordered/delayed frames, handshake
// resets) into the outgoing stream; the client's reconnect-resume machinery
// must deliver the same applied state regardless.
//
// Usage:
//   gstream_client --port=N [--host=127.0.0.1] [--name=client]
//                  [--stream=FILE.csv | --dataset=snb --updates=N --seed=N]
//                  [--queries=FILE]           # one pattern per line
//                  [--wait-drain]             # block until the server drains
//                  [--fault-tear=N] [--fault-dup=N] [--fault-reorder=N]
//                  [--fault-delay=N --fault-delay-micros=U]
//                  [--fault-resets=N] [--fault-seed=N]
//                  [--heartbeat-millis=N] [--timeout-millis=N]
//                  [--max-reconnects=N]

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "ingest/csv_stream.h"
#include "server/client.h"
#include "workload/snb.h"

using namespace gstream;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "usage: gstream_client --port=N [options]\n");
    return 2;
  }

  server::ClientOptions opts;
  opts.host = flags.GetString("host", "127.0.0.1");
  opts.port = port;
  opts.name = flags.GetString("name", "client");
  opts.heartbeat_millis =
      static_cast<int>(flags.GetPositiveInt("heartbeat-millis", 500));
  opts.call_timeout_millis =
      static_cast<int>(flags.GetPositiveInt("timeout-millis", 30000));
  opts.max_reconnects =
      static_cast<int>(flags.GetPositiveInt("max-reconnects", 10));
  opts.faults.tear_frame =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-tear", 0, 0));
  opts.faults.dup_every =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-dup", 0, 0));
  opts.faults.reorder_every =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-reorder", 0, 0));
  opts.faults.delay_every =
      static_cast<uint64_t>(flags.GetIntAtLeast("fault-delay", 0, 0));
  opts.faults.delay_micros =
      static_cast<int>(flags.GetIntAtLeast("fault-delay-micros", 1000, 0));
  opts.faults.handshake_resets =
      static_cast<uint32_t>(flags.GetIntAtLeast("fault-resets", 0, 0));
  opts.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed", 1));

  server::Client client(opts);
  uint64_t notify_count = 0;
  client.OnNotify([&notify_count](const server::NotifyMsg&) { ++notify_count; });

  std::string error;
  if (!client.Connect(&error)) {
    std::fprintf(stderr, "gstream_client: %s\n", error.c_str());
    return 2;
  }

  // Subscriptions first, so notifications cover the whole streamed prefix.
  const std::string queries_file = flags.GetString("queries", "");
  if (!queries_file.empty()) {
    std::FILE* f = std::fopen(queries_file.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "gstream_client: cannot open %s\n",
                   queries_file.c_str());
      return 2;
    }
    char line[4096];
    uint32_t sub_id = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
      std::string pattern(line);
      while (!pattern.empty() &&
             (pattern.back() == '\n' || pattern.back() == '\r'))
        pattern.pop_back();
      if (pattern.empty() || pattern[0] == '#') continue;
      server::SubAckMsg ack;
      if (!client.Subscribe(sub_id, pattern, &ack, &error)) {
        std::fprintf(stderr, "gstream_client: subscribe: %s\n", error.c_str());
        std::fclose(f);
        return 2;
      }
      if (ack.status == static_cast<uint8_t>(server::SubStatus::kError)) {
        std::fprintf(stderr, "gstream_client: pattern rejected: %s\n",
                     ack.message.c_str());
        std::fclose(f);
        return 2;
      }
      std::printf("subscribed sub_id=%u qid=%u\n", sub_id, ack.qid);
      ++sub_id;
    }
    std::fclose(f);
  }

  // Build the edge stream: a CSV file or a generated workload.
  auto interner = std::make_shared<StringInterner>();
  UpdateStream stream(interner);
  const std::string stream_file = flags.GetString("stream", "");
  if (!stream_file.empty()) {
    if (!ingest::LoadCsvStream(stream_file, *interner, stream)) {
      std::fprintf(stderr, "gstream_client: cannot load %s\n",
                   stream_file.c_str());
      return 2;
    }
  } else if (flags.Has("dataset") || flags.Has("updates")) {
    workload::SnbConfig c;
    c.num_updates = static_cast<size_t>(flags.GetPositiveInt("updates", 10000));
    c.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    workload::Workload w = workload::GenerateSnb(c);
    interner = w.interner;
    stream = w.stream;
  }

  if (stream.size() > 0) {
    std::vector<std::string> dict;
    dict.reserve(interner->size());
    for (uint32_t id = 0; id < interner->size(); ++id)
      dict.push_back(interner->Lookup(id));
    client.SetDictionary(std::move(dict));
    if (!client.StreamEdges(stream.updates(), &error)) {
      std::fprintf(stderr, "gstream_client: stream: %s\n", error.c_str());
      return 2;
    }
    if (!client.WaitApplied(stream.size(), &error)) {
      std::fprintf(stderr, "gstream_client: wait: %s\n", error.c_str());
      return 2;
    }
  }

  if (flags.GetBool("wait-drain", false)) {
    // Sit attached until the server announces its drain boundary (bounded by
    // the call timeout so a vanished server cannot wedge us).
    for (int waited = 0;
         !client.drained() && waited < opts.call_timeout_millis; waited += 50)
      ::usleep(50 * 1000);
  }

  const server::ClientStats s = client.stats();
  std::printf("client exit: connects=%llu reconnects=%llu\n",
              (unsigned long long)s.connects, (unsigned long long)s.reconnects);
  std::printf("client exit: records_sent=%llu notifies=%llu drained=%d\n",
              (unsigned long long)s.records_sent,
              (unsigned long long)s.notifies, client.drained() ? 1 : 0);
  std::printf("client exit: faults_torn=%llu faults_duplicated=%llu "
              "faults_reordered=%llu handshake_resets=%llu "
              "server_errors=%llu\n",
              (unsigned long long)s.faults_torn,
              (unsigned long long)s.faults_duplicated,
              (unsigned long long)s.faults_reordered,
              (unsigned long long)s.handshake_resets,
              (unsigned long long)s.server_errors);
  std::fflush(stdout);
  client.Close();
  return 0;
}
