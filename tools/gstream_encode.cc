// gstream_encode — write a graph update stream as a checksummed `.gsb`
// binary file (DESIGN.md §10), the durable input of gstream_cli's --gsb
// replay mode and of the crash-recovery protocol.
//
// Usage:
//   gstream_encode --out=FILE.gsb [--dataset=snb|taxi|bio] [--updates=N]
//                  [--seed=N] [--stream=FILE.csv] [--block-records=N]
//                  [--ts-start=N --ts-step=N]
//
// The stream comes from one of the built-in generators (--dataset, the
// paper's SNB / taxi / BioGRID workloads) or from a CSV edge stream
// (--stream, same syntax as gstream_cli). --block-records bounds the blast
// radius of one corrupt block: smaller blocks quarantine fewer records per
// CRC mismatch at the cost of per-block header overhead (bench/micro_ingest
// sweeps this).
//
// --ts-start/--ts-step stamp synthetic event timestamps (record i gets
// ts-start + i * ts-step), upgrading the file to the timestamped `.gsb` v2
// layout for gstream_cli's --window-policy sliding-window replay. Without
// them the output is the byte-identical v1 format.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "ingest/csv_stream.h"
#include "ingest/gsb_writer.h"
#include "workload/bio.h"
#include "workload/snb.h"
#include "workload/taxi.h"

using namespace gstream;

namespace {

workload::Workload MakeDataset(const std::string& name, size_t updates,
                               uint64_t seed) {
  if (name == "taxi") {
    workload::TaxiConfig c;
    c.num_updates = updates;
    c.seed = seed;
    return workload::GenerateTaxi(c);
  }
  if (name == "bio") {
    workload::BioConfig c;
    c.num_updates = updates;
    c.seed = seed;
    return workload::GenerateBio(c);
  }
  workload::SnbConfig c;
  c.num_updates = updates;
  c.seed = seed;
  return workload::GenerateSnb(c);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: gstream_encode --out=FILE.gsb "
                 "[--dataset=snb|taxi|bio] [--updates=N] [--seed=N] "
                 "[--stream=FILE.csv] [--block-records=N]\n");
    return 2;
  }
  const std::string dataset = flags.GetString("dataset", "snb");
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 20'000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  ingest::GsbWriterOptions options;
  options.records_per_block =
      static_cast<size_t>(flags.GetPositiveInt("block-records", 4096));

  workload::Workload w;
  const std::string stream_file = flags.GetString("stream", "");
  if (!stream_file.empty()) {
    w.name = stream_file;
    w.interner = std::make_shared<StringInterner>();
    w.stream = UpdateStream(w.interner);
    if (!ingest::LoadCsvStream(stream_file, *w.interner, w.stream)) return 2;
  } else {
    w = MakeDataset(dataset, updates, seed);
  }

  std::vector<EdgeUpdate> records = w.stream.updates();
  const uint64_t ts_start =
      static_cast<uint64_t>(flags.GetIntAtLeast("ts-start", 0, 0));
  const uint64_t ts_step =
      static_cast<uint64_t>(flags.GetIntAtLeast("ts-step", 0, 0));
  if (ts_start > 0 || ts_step > 0) {
    for (size_t i = 0; i < records.size(); ++i)
      records[i].ts = ts_start + static_cast<uint64_t>(i) * ts_step;
  }

  const std::vector<uint8_t> image =
      ingest::EncodeGsb(*w.interner, records, options);
  std::string error;
  if (!ingest::AtomicWriteFile(out, image.data(), image.size(), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %zu records, %zu dict strings, %zu bytes "
              "(%zu records/block)\n",
              out.c_str(), w.stream.size(), w.interner->size(), image.size(),
              options.records_per_block);
  return 0;
}
