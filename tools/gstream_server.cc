// gstream_server — the resilient streaming front-end (DESIGN.md §11): a
// TCP server that accepts concurrent edge producers and query subscribers
// speaking the length-framed wire protocol, multiplexes edge streams into
// the bounded ingest ring behind one continuous engine, and pushes per-query
// match notifications back. SIGTERM/SIGINT trigger a graceful drain: stop
// accepting, flush the final partial window, write a boundary snapshot (when
// durability is configured), send every client a Drain frame, then exit.
//
// Usage:
//   gstream_server [--engine=tric+] [--host=127.0.0.1] [--port=0]
//                  [--window=N] [--threads=N] [--ring-capacity=N]
//                  [--overload=block|shed|failfast]
//                  [--slow-client=block|shed|disconnect]
//                  [--outbound-capacity=N] [--sndbuf-bytes=N]
//                  [--heartbeat-millis=N]
//                  [--idle-timeout-millis=N] [--flush-millis=N]
//                  [--journal=FILE.gsb --state=FILE.state]
//                  [--snapshot-every=WINDOWS]
//                  [--window-policy=none|time|count|label-ttl]
//                  [--window-width=N]
//
// Prints "server listening port=NNNN" once bound (port 0 = ephemeral), and
// greppable "server exit:" counter lines on shutdown.

#include <signal.h>

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "ingest/ring_buffer.h"
#include "server/server.h"

using namespace gstream;

namespace {

EngineKind ParseEngine(const std::string& name) {
  if (name == "tric") return EngineKind::kTric;
  if (name == "tric+") return EngineKind::kTricPlus;
  if (name == "inv") return EngineKind::kInv;
  if (name == "inv+") return EngineKind::kInvPlus;
  if (name == "inc") return EngineKind::kInc;
  if (name == "inc+") return EngineKind::kIncPlus;
  if (name == "graphdb") return EngineKind::kGraphDb;
  std::fprintf(stderr, "unknown engine '%s', using tric+\n", name.c_str());
  return EngineKind::kTricPlus;
}

bool ParseOverload(const std::string& name, ingest::OverloadPolicy* out) {
  if (name == "block") *out = ingest::OverloadPolicy::kBlock;
  else if (name == "shed") *out = ingest::OverloadPolicy::kShed;
  else if (name == "failfast") *out = ingest::OverloadPolicy::kFailFast;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Block the shutdown signals in every thread (the server's threads inherit
  // this mask); main sigwait()s for them below.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  Flags flags = Flags::Parse(argc, argv);
  server::ServerOptions opts;
  opts.host = flags.GetString("host", "127.0.0.1");
  opts.port = static_cast<int>(flags.GetIntAtLeast("port", 0, 0));
  opts.engine = ParseEngine(flags.GetString("engine", "tric+"));
  opts.batch_window = static_cast<size_t>(flags.GetPositiveInt("window", 32));
  opts.batch_threads = static_cast<int>(flags.GetPositiveInt("threads", 1));
  opts.shared_finalize = flags.GetBool("shared-finalize", true);
  opts.ring_capacity =
      static_cast<size_t>(flags.GetPositiveInt("ring-capacity", 8));
  if (!ParseOverload(flags.GetString("overload", "block"),
                     &opts.ingest_overload)) {
    std::fprintf(stderr, "unknown --overload (block|shed|failfast)\n");
    return 2;
  }
  if (!server::ParseSlowClientPolicy(flags.GetString("slow-client", "block"),
                                     &opts.slow_client)) {
    std::fprintf(stderr, "unknown --slow-client (block|shed|disconnect)\n");
    return 2;
  }
  opts.outbound_capacity =
      static_cast<size_t>(flags.GetPositiveInt("outbound-capacity", 256));
  opts.sndbuf_bytes =
      static_cast<int>(flags.GetIntAtLeast("sndbuf-bytes", 0, 0));
  opts.heartbeat_millis =
      static_cast<int>(flags.GetPositiveInt("heartbeat-millis", 1000));
  opts.idle_timeout_millis =
      static_cast<int>(flags.GetPositiveInt("idle-timeout-millis", 10000));
  opts.window_flush_millis =
      static_cast<int>(flags.GetPositiveInt("flush-millis", 20));
  opts.journal_path = flags.GetString("journal", "");
  opts.state_path = flags.GetString("state", "");
  opts.snapshot_every_windows =
      static_cast<uint64_t>(flags.GetIntAtLeast("snapshot-every", 0, 0));
  if (!temporal::ParseWindowPolicy(flags.GetString("window-policy", "none"),
                                   &opts.window.policy)) {
    std::fprintf(stderr, "unknown --window-policy (none|time|count|label-ttl)\n");
    return 2;
  }
  opts.window.width =
      static_cast<uint64_t>(flags.GetIntAtLeast("window-width", 0, 0));

  server::Server server(opts);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "gstream_server: %s\n", error.c_str());
    return 2;
  }
  std::printf("server listening port=%d\n", server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "gstream_server: signal %d, draining\n", sig);
  server.Drain();

  const server::ServerStats s = server.stats();
  std::printf("server exit: connections_accepted=%llu\n",
              (unsigned long long)s.connections_accepted);
  std::printf("server exit: records_accepted=%llu records_applied=%llu "
              "duplicate_records_skipped=%llu\n",
              (unsigned long long)s.records_accepted,
              (unsigned long long)s.records_applied,
              (unsigned long long)s.duplicate_records_skipped);
  std::printf("server exit: windows_finalized=%llu snapshots_written=%llu\n",
              (unsigned long long)s.windows_finalized,
              (unsigned long long)s.snapshots_written);
  std::printf("server exit: notifications_produced=%llu "
              "notifications_delivered=%llu notifications_shed=%llu\n",
              (unsigned long long)s.notifications_produced,
              (unsigned long long)s.notifications_delivered,
              (unsigned long long)s.notifications_shed);
  std::printf("server exit: protocol_errors=%llu idle_disconnects=%llu "
              "slow_disconnects=%llu\n",
              (unsigned long long)s.protocol_errors,
              (unsigned long long)s.idle_disconnects,
              (unsigned long long)s.slow_disconnects);
  if (opts.window.enabled())
    std::printf("server exit: expired_edges=%llu expiry_batches=%llu "
                "live_edges=%llu\n",
                (unsigned long long)s.expired_edges,
                (unsigned long long)s.expiry_batches,
                (unsigned long long)s.live_edges);
  std::fflush(stdout);
  return 0;
}
